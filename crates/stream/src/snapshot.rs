//! Snapshots: the unit of work handed to the matching engine.
//!
//! "Each snapshot includes the last instance of the data graph and the
//! changes made since then" (Section I). In this implementation the data
//! graph itself lives inside the engine; a [`Snapshot`] therefore carries
//! only the *changes*: an insertion list, an explicit deletion list and — for
//! sliding-window streams — an eviction cutoff that the engine expands into
//! deletions of all edges older than the cutoff.

use crate::event::StreamEvent;
use mnemonic_graph::ids::Timestamp;
use serde::{Deserialize, Serialize};

/// A batch of changes to apply on top of the previous graph state.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Sequence number of the snapshot (0-based).
    pub id: u64,
    /// Edges inserted in this snapshot.
    pub insertions: Vec<StreamEvent>,
    /// Edges explicitly deleted in this snapshot (LSBench-style negated
    /// triples).
    pub deletions: Vec<StreamEvent>,
    /// For sliding-window streams: evict every live edge whose timestamp is
    /// strictly older than this cutoff.
    pub evict_before: Option<Timestamp>,
    /// Logical time at the end of the snapshot (largest event timestamp seen,
    /// or the window head for sliding windows).
    pub watermark: Timestamp,
}

impl Snapshot {
    /// Build a snapshot from an arbitrary mix of insert/delete events: the
    /// grouping step of the engine's batched update path. Events are
    /// partitioned by kind (the engine applies insertions before deletions,
    /// Algorithm 1) and the watermark is the largest timestamp seen.
    pub fn from_events(id: u64, events: impl IntoIterator<Item = StreamEvent>) -> Self {
        let mut snapshot = Snapshot {
            id,
            ..Default::default()
        };
        for event in events {
            snapshot.watermark = Timestamp(snapshot.watermark.0.max(event.timestamp.0));
            if event.is_insert() {
                snapshot.insertions.push(event);
            } else {
                snapshot.deletions.push(event);
            }
        }
        snapshot
    }

    /// Total number of explicit events carried by the snapshot.
    pub fn event_count(&self) -> usize {
        self.insertions.len() + self.deletions.len()
    }

    /// Whether the snapshot carries no work at all.
    pub fn is_empty(&self) -> bool {
        self.insertions.is_empty() && self.deletions.is_empty() && self.evict_before.is_none()
    }

    /// Whether the snapshot contains insertions.
    pub fn has_insertions(&self) -> bool {
        !self.insertions.is_empty()
    }

    /// Whether the snapshot contains deletions (explicit or via eviction).
    pub fn has_deletions(&self) -> bool {
        !self.deletions.is_empty() || self.evict_before.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot() {
        let s = Snapshot::default();
        assert!(s.is_empty());
        assert_eq!(s.event_count(), 0);
        assert!(!s.has_insertions());
        assert!(!s.has_deletions());
    }

    #[test]
    fn from_events_partitions_and_watermarks() {
        let s = Snapshot::from_events(
            7,
            [
                StreamEvent::insert(0, 1, 0).at(5),
                StreamEvent::delete(2, 3, 0).at(11),
                StreamEvent::insert(4, 5, 0).at(3),
            ],
        );
        assert_eq!(s.id, 7);
        assert_eq!(s.insertions.len(), 2);
        assert_eq!(s.deletions.len(), 1);
        assert_eq!(s.watermark, Timestamp(11));
        assert!(s.evict_before.is_none());
    }

    #[test]
    fn eviction_counts_as_deletion_work() {
        let s = Snapshot {
            id: 3,
            insertions: vec![StreamEvent::insert(0, 1, 0)],
            deletions: vec![],
            evict_before: Some(Timestamp(100)),
            watermark: Timestamp(200),
        };
        assert!(!s.is_empty());
        assert!(s.has_insertions());
        assert!(s.has_deletions());
        assert_eq!(s.event_count(), 1);
    }
}
