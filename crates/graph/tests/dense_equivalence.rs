//! Property tests pinning the dense hot-path structures to their hashed
//! reference models: [`DenseBitSet`] must be observationally equivalent to a
//! `HashSet<usize>` under arbitrary insert/remove/clear/iterate
//! interleavings, and the dense per-vertex [`EdgeRecycler`] must behave
//! exactly like the `HashMap`-of-free-lists it replaced — including the
//! full recycling round-trip through a [`StreamingGraph`].

use mnemonic_graph::bitset::DenseBitSet;
use mnemonic_graph::edge::EdgeTriple;
use mnemonic_graph::ids::{EdgeId, EdgeLabel, VertexId};
use mnemonic_graph::multigraph::StreamingGraph;
use mnemonic_graph::recycle::EdgeRecycler;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// One step of a bitset edit script: `op` selects insert/remove/clear/query,
/// `idx` the target index (spanning several words plus the auto-grow range).
fn bitset_script() -> impl Strategy<Value = Vec<(u32, usize)>> {
    prop::collection::vec((0u32..8, 0usize..300), 1..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `DenseBitSet` == `HashSet<usize>` under arbitrary interleavings. The
    /// generational clear is the interesting part: a cleared-and-reused set
    /// must not leak bits from any earlier generation.
    #[test]
    fn bitset_matches_hashset_model(script in bitset_script()) {
        let mut dense = DenseBitSet::new();
        let mut model: HashSet<usize> = HashSet::new();
        for (op, idx) in script {
            match op {
                // Clear rarely (one op out of eight) so generations nest
                // deep enough to matter.
                0 => {
                    dense.clear();
                    model.clear();
                }
                1 | 2 => {
                    prop_assert_eq!(dense.remove(idx), model.remove(&idx));
                }
                _ => {
                    prop_assert_eq!(dense.insert(idx), model.insert(idx));
                }
            }
            prop_assert_eq!(dense.len(), model.len());
            prop_assert_eq!(dense.contains(idx), model.contains(&idx));
            prop_assert_eq!(dense.is_empty(), model.is_empty());
        }
        // Iteration yields exactly the model's members, in ascending order.
        let mut expected: Vec<usize> = model.into_iter().collect();
        expected.sort_unstable();
        prop_assert_eq!(dense.iter().collect::<Vec<_>>(), expected);
    }

    /// The dense `EdgeRecycler` == a `HashMap<vertex, Vec<EdgeId>>` model
    /// under arbitrary release/acquire/clear interleavings (LIFO per source
    /// vertex, strictly per-vertex ownership).
    #[test]
    fn recycler_matches_hashmap_model(script in prop::collection::vec((0u32..6, 0u32..12, 0u32..64), 1..100)) {
        let mut dense = EdgeRecycler::new(true);
        let mut model: HashMap<u32, Vec<EdgeId>> = HashMap::new();
        let mut model_free = 0usize;
        for (op, vertex, id) in script {
            match op {
                0 => {
                    dense.clear();
                    model.clear();
                    model_free = 0;
                }
                1 | 2 => {
                    let expected = model.get_mut(&vertex).and_then(|l| l.pop());
                    model_free -= expected.is_some() as usize;
                    prop_assert_eq!(dense.acquire(VertexId(vertex)), expected);
                }
                _ => {
                    dense.release(VertexId(vertex), EdgeId(id));
                    model.entry(vertex).or_default().push(EdgeId(id));
                    model_free += 1;
                }
            }
            prop_assert_eq!(dense.free_slots(), model_free);
        }
    }

    /// Full recycling round-trip through the graph: random insert/delete
    /// scripts never alias a live edge, every recycled id goes back to an
    /// edge of the same source vertex, and the placeholder table stays
    /// bounded by the insertion count.
    #[test]
    fn graph_recycling_roundtrip(script in prop::collection::vec((any::<bool>(), 0u32..6, 0u32..6, 0u16..2), 1..80)) {
        let mut graph = StreamingGraph::new();
        let mut live: Vec<EdgeId> = Vec::new();
        let mut freed_by_src: HashMap<u32, Vec<EdgeId>> = HashMap::new();
        for (insert, src, dst, label) in script {
            if insert || live.is_empty() {
                let id = graph.insert_edge(EdgeTriple::new(
                    VertexId(src),
                    VertexId(dst),
                    EdgeLabel(label),
                ));
                prop_assert!(!live.contains(&id), "recycled id {id:?} still live");
                // A reused id must come from this source vertex's free list,
                // most recently freed first (the paper's LIFO contract).
                let parked = freed_by_src.entry(src).or_default();
                if let Some(pos) = parked.iter().position(|&e| e == id) {
                    prop_assert_eq!(pos, parked.len() - 1, "recycling must be LIFO");
                    parked.pop();
                }
                live.push(id);
            } else {
                let idx = (src as usize + dst as usize) % live.len();
                let id = live.swap_remove(idx);
                let edge = graph.edge(id).expect("live edge");
                graph.delete_edge(id).unwrap();
                freed_by_src.entry(edge.src.0).or_default().push(id);
            }
            prop_assert_eq!(graph.live_edge_count(), live.len());
            prop_assert!(graph.placeholder_count() as u64 <= graph.stats().total_insertions);
        }
        for id in live {
            prop_assert!(graph.is_alive(id));
        }
    }
}

/// Replay a bitset edit script, returning the dense set and its model. The
/// clear ops leave the dense side mid-generation, so the kernel tests below
/// exercise stale-stamp words, not just freshly written ones.
fn replay_script(script: &[(u32, usize)]) -> (DenseBitSet, HashSet<usize>) {
    let mut dense = DenseBitSet::new();
    let mut model = HashSet::new();
    for &(op, idx) in script {
        match op {
            0 => {
                dense.clear();
                model.clear();
            }
            1 | 2 => {
                dense.remove(idx);
                model.remove(&idx);
            }
            _ => {
                dense.insert(idx);
                model.insert(idx);
            }
        }
    }
    (dense, model)
}

fn sorted(set: impl IntoIterator<Item = usize>) -> Vec<usize> {
    let mut v: Vec<usize> = set.into_iter().collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The word-at-a-time kernels == `HashSet` set algebra, for operands of
    /// arbitrary capacity, generation state and overlap. `out` starts dirty
    /// so the `*_into` kernels must fully overwrite the recycled target.
    #[test]
    fn word_kernels_match_set_algebra(sa in bitset_script(), sb in bitset_script()) {
        let (a, ma) = replay_script(&sa);
        let (b, mb) = replay_script(&sb);

        let mut out = DenseBitSet::new();
        out.insert(7);
        a.intersect_into(&b, &mut out);
        prop_assert_eq!(out.iter().collect::<Vec<_>>(), sorted(ma.intersection(&mb).copied()));
        prop_assert_eq!(out.len(), ma.intersection(&mb).count());

        a.union_into(&b, &mut out);
        prop_assert_eq!(out.iter().collect::<Vec<_>>(), sorted(ma.union(&mb).copied()));
        prop_assert_eq!(out.len(), ma.union(&mb).count());

        a.difference_into(&b, &mut out);
        prop_assert_eq!(out.iter().collect::<Vec<_>>(), sorted(ma.difference(&mb).copied()));
        prop_assert_eq!(out.len(), ma.difference(&mb).count());

        prop_assert_eq!(a.and_not_count(&b), ma.difference(&mb).count());
        prop_assert_eq!(a.iter_and(&b).collect::<Vec<_>>(), sorted(ma.intersection(&mb).copied()));

        let mut merged = a.clone();
        merged.union_with(&b);
        prop_assert_eq!(merged.iter().collect::<Vec<_>>(), sorted(ma.union(&mb).copied()));
        prop_assert_eq!(merged.len(), ma.union(&mb).count());
    }

    /// The fused [`NeighborhoodProfile`] (one adjacency sweep, word-parallel
    /// dedup) == the per-label rescan the filtering stage used to issue, on
    /// random multigraphs with churn, for exact, wildcard and absent labels.
    #[test]
    fn neighborhood_profile_matches_label_scans(
        script in prop::collection::vec((any::<bool>(), 0u32..6, 0u32..6, 0u16..4), 1..60),
        probes in prop::collection::vec((0u32..6, 0u16..5), 1..16),
    ) {
        use mnemonic_graph::ids::VertexLabel;
        use mnemonic_graph::profile::NeighborhoodProfile;

        // Raw label 3 maps to the wildcard so scripts and probes cover the
        // unlabelled case without a dedicated strategy combinator.
        let widen = |l: u16| if l >= 3 { u16::MAX } else { l };
        let mut graph = StreamingGraph::new();
        let mut live: Vec<EdgeId> = Vec::new();
        for (insert, src, dst, label) in script {
            if insert || live.is_empty() {
                live.push(graph.insert_edge(EdgeTriple::new(
                    VertexId(src),
                    VertexId(dst),
                    EdgeLabel(widen(label)),
                )));
            } else {
                let idx = (src as usize + dst as usize) % live.len();
                graph.delete_edge(live.swap_remove(idx)).unwrap();
            }
        }

        let mut profile = NeighborhoodProfile::default();
        for (raw, l) in probes {
            let v = VertexId(raw);
            profile.collect(&graph, v);
            let (el, vl) = (EdgeLabel(widen(l)), VertexLabel(widen(l)));
            prop_assert_eq!(profile.out_edge_count(el), graph.out_label_count(v, el));
            prop_assert_eq!(profile.in_edge_count(el), graph.in_label_count(v, el));
            prop_assert_eq!(profile.out_neighbor_count(vl), graph.out_neighbor_label_count(v, vl));
            prop_assert_eq!(profile.in_neighbor_count(vl), graph.in_neighbor_label_count(v, vl));
        }
    }
}
