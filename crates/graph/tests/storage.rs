//! Property tests for the paged storage tier.
//!
//! Four surfaces, each checked against a plain in-memory model:
//!
//! * the varint/zigzag codec and record framing — random values round-trip,
//!   truncated buffers are rejected instead of mis-decoded,
//! * delta-compressed posting lists — random strictly increasing sequences
//!   round-trip through the compressed form,
//! * the [`PagedEdgeLog`] — random record streams appended in random batch
//!   splits survive page-boundary crossings and read back exactly, through
//!   a cache small enough to force evictions mid-scan,
//! * the [`PageCache`] — a random pin/unpin script against a model: the
//!   resident set never exceeds the budget and pinned frames never move,
//!
//! plus torn-write detection: a page image that was truncated or flipped on
//! disk must fail the checksum instead of decoding garbage.

use mnemonic_graph::edge::Edge;
use mnemonic_graph::edge_log::LogRecord;
use mnemonic_graph::ids::{EdgeId, EdgeLabel, Timestamp, VertexId};
use mnemonic_graph::storage::codec;
use mnemonic_graph::storage::codec::PostingList;
use mnemonic_graph::storage::page::Page;
use mnemonic_graph::storage::{PageCache, PageManager, PagedEdgeLog};
use proptest::prelude::*;

// ---- codec round-trips ------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// LEB128 varints round-trip for arbitrary u64 values packed
    /// back-to-back in one buffer.
    #[test]
    fn varint_u64_round_trips(values in prop::collection::vec(any::<u64>(), 1..64)) {
        let mut buf = Vec::new();
        for &v in &values {
            codec::write_varint_u64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            prop_assert_eq!(codec::read_varint_u64(&buf, &mut pos), Some(v));
        }
        prop_assert_eq!(pos, buf.len());
        // One byte short of any boundary must reject, not mis-decode.
        let mut pos = 0;
        let mut decoded = 0;
        while codec::read_varint_u64(&buf[..buf.len() - 1], &mut pos).is_some() {
            decoded += 1;
        }
        prop_assert!(decoded < values.len());
    }

    /// Zigzag is a bijection on i64 (checked through the u64 bit pattern).
    #[test]
    fn zigzag_round_trips(bits in prop::collection::vec(any::<u64>(), 1..64)) {
        for &b in &bits {
            let v = b as i64;
            prop_assert_eq!(codec::unzigzag(codec::zigzag(v)), v);
            // Small magnitudes must stay small: that is the whole point of
            // zigzag for delta encoding.
            let small = (b % 64) as i64 - 32;
            prop_assert!(codec::zigzag(small) < 128);
        }
    }

    /// Signed deltas round-trip through the zigzag-varint composition.
    #[test]
    fn delta_round_trips(bits in prop::collection::vec(any::<u64>(), 1..64)) {
        let mut buf = Vec::new();
        for &b in &bits {
            codec::write_delta(&mut buf, b as i64);
        }
        let mut pos = 0;
        for &b in &bits {
            prop_assert_eq!(codec::read_delta(&buf, &mut pos), Some(b as i64));
        }
        prop_assert_eq!(pos, buf.len());
    }

    /// Length-prefixed records round-trip, and a truncated tail (a torn
    /// write mid-record) is detected as end-of-input, never a bogus slice.
    #[test]
    fn record_framing_round_trips_and_detects_truncation(
        payloads in prop::collection::vec(
            prop::collection::vec(0u32..256, 0..40),
            1..20,
        ),
        cut in any::<usize>(),
    ) {
        let payloads: Vec<Vec<u8>> = payloads
            .into_iter()
            .map(|p| p.into_iter().map(|b| b as u8).collect())
            .collect();
        let mut buf = Vec::new();
        for p in &payloads {
            codec::write_record(&mut buf, p);
        }
        let mut pos = 0;
        for p in &payloads {
            prop_assert_eq!(codec::read_record(&buf, &mut pos), Some(p.as_slice()));
        }
        prop_assert_eq!(codec::read_record(&buf, &mut pos), None);

        // Cut the buffer anywhere strictly inside: every record either
        // decodes to exactly its original payload or reads as None.
        let cut = 1 + cut % buf.len().max(1);
        if cut < buf.len() {
            let torn = &buf[..cut];
            let mut pos = 0;
            let mut intact = 0;
            while let Some(rec) = codec::read_record(torn, &mut pos) {
                prop_assert_eq!(rec, payloads[intact].as_slice());
                intact += 1;
            }
            prop_assert!(intact < payloads.len());
        }
    }

    /// Posting lists reproduce arbitrary strictly increasing sequences.
    #[test]
    fn posting_list_round_trips(gaps in prop::collection::vec(1u64..5_000, 1..200)) {
        let mut list = PostingList::new();
        let mut model = Vec::with_capacity(gaps.len());
        let mut v = 0u64;
        for &g in &gaps {
            v += g;
            list.push(v);
            model.push(v);
        }
        prop_assert_eq!(list.len(), model.len());
        prop_assert_eq!(list.last(), model.last().copied());
        let decoded: Vec<u64> = list.iter().collect();
        prop_assert_eq!(decoded, model);
    }
}

// ---- paged log: page-boundary splits ---------------------------------------

fn record_from(seed: (u32, u32, u32, u64, u64)) -> LogRecord {
    let (id, src, dst, ts, debi_row) = seed;
    LogRecord {
        edge: Edge {
            id: EdgeId(id % 100_000),
            src: VertexId(src % 48),
            dst: VertexId(dst % 48),
            label: EdgeLabel((id % 7) as u16),
            timestamp: Timestamp(ts % (1 << 40)),
        },
        debi_row,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random record streams appended in random batch splits read back
    /// exactly — across page boundaries, through a 2-page cache (so scans
    /// and fetches evict mid-flight), in both scan and per-vertex order.
    #[test]
    fn paged_log_round_trips_across_page_boundaries(
        seeds in prop::collection::vec(
            (any::<u32>(), any::<u32>(), any::<u32>(), any::<u64>(), any::<u64>()),
            1..600,
        ),
        splits in prop::collection::vec(1usize..64, 1..32),
    ) {
        let records: Vec<LogRecord> = seeds.into_iter().map(record_from).collect();
        let mut log = PagedEdgeLog::create_temp(4096, 2, "prop-split").unwrap();
        let mut fed = 0;
        let mut split_iter = splits.iter().cycle();
        while fed < records.len() {
            let take = (*split_iter.next().unwrap()).min(records.len() - fed);
            log.append_batch(&records[fed..fed + take]).unwrap();
            fed += take;
        }
        prop_assert_eq!(log.len(), records.len() as u64);

        let scanned = log.scan_all().unwrap();
        prop_assert_eq!(&scanned, &records);

        for v in 0..48u32 {
            let vid = VertexId(v);
            let expect: Vec<LogRecord> = records
                .iter()
                .copied()
                .filter(|r| r.edge.src == vid)
                .collect();
            prop_assert_eq!(log.fetch_outgoing(vid).unwrap(), expect);
            let expect: Vec<LogRecord> = records
                .iter()
                .copied()
                .filter(|r| r.edge.dst == vid)
                .collect();
            prop_assert_eq!(log.fetch_incoming(vid).unwrap(), expect);
        }

        // The cache budget held throughout.
        prop_assert!(log.resident_pages() <= log.cache_capacity());
        log.destroy().unwrap();
    }
}

// ---- page cache: eviction/pin model ----------------------------------------

const MODEL_PAGES: u32 = 12;
const MODEL_CAPACITY: usize = 3;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A random pin/read/unpin script against a model: every pinned frame
    /// keeps showing its page, the resident set never exceeds the budget,
    /// and the budget can always serve one more pin as long as fewer than
    /// `capacity` frames are pinned.
    #[test]
    fn page_cache_respects_pins_and_budget(
        script in prop::collection::vec((0u32..MODEL_PAGES, 0u32..3), 1..120),
    ) {
        let mut pager = PageManager::create_temp(4096, "prop-cache").unwrap();
        for i in 0..MODEL_PAGES {
            let id = pager.alloc();
            let mut page = Page::new(4096, id);
            assert!(page.push_record(&[i as u8, (i * 3) as u8]));
            pager.write_page(&mut page).unwrap();
        }
        let mut cache = PageCache::new(MODEL_CAPACITY);
        // Held pins: (page id, frame). Bounded below capacity so a fresh
        // pin always has an evictable frame.
        let mut held: Vec<(u32, usize)> = Vec::new();
        let mut pins = 0u64;
        for (page_id, action) in script {
            match action {
                // Pin, verify, hold (dropping the oldest hold if needed).
                0 => {
                    if held.len() >= MODEL_CAPACITY - 1 {
                        let (_, frame) = held.remove(0);
                        cache.unpin(frame);
                    }
                    let frame = cache.pin(&mut pager, page_id).unwrap();
                    pins += 1;
                    held.push((page_id, frame));
                }
                // Pin transiently and release straight away.
                1 => {
                    let frame = cache.pin(&mut pager, page_id).unwrap();
                    pins += 1;
                    cache.unpin(frame);
                }
                // Release the oldest hold.
                _ => {
                    if !held.is_empty() {
                        let (_, frame) = held.remove(0);
                        cache.unpin(frame);
                    }
                }
            }
            // Invariants after every step: budget respected, pinned frames
            // still show their page with its payload intact.
            prop_assert!(cache.resident_pages() <= MODEL_CAPACITY);
            for &(id, frame) in &held {
                let page = cache.page(frame);
                prop_assert_eq!(page.id(), id);
                let rec = page.records().next().unwrap();
                prop_assert_eq!(rec, &[id as u8, (id * 3) as u8]);
            }
        }
        for (_, frame) in held.drain(..) {
            cache.unpin(frame);
        }
        cache.flush(&mut pager).unwrap();
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, pins);
        pager.destroy().unwrap();
    }
}

// ---- crash recovery: any corruption offset ---------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Corrupt any single byte of the on-disk page file and recover: the
    /// result is always an *exact prefix* of the written records — at least
    /// everything in pages strictly before the corrupted one — and any loss
    /// is reported, never silent. A flip landing in checksum-invisible
    /// padding legitimately recovers everything; then nothing may be
    /// reported truncated.
    #[test]
    fn recovery_yields_a_reported_exact_prefix_for_any_corruption_offset(
        seeds in prop::collection::vec(
            (any::<u32>(), any::<u32>(), any::<u32>(), any::<u64>(), any::<u64>()),
            50..500,
        ),
        offset_seed in any::<u64>(),
        mask_seed in any::<u32>(),
    ) {
        use std::io::{Read, Seek, SeekFrom, Write};

        let mask = (mask_seed as u8) | 1; // a zero mask would corrupt nothing

        let records: Vec<LogRecord> = seeds.into_iter().map(record_from).collect();
        let mut log = PagedEdgeLog::create_temp(4096, 2, "prop-recover").unwrap();
        log.append_batch(&records).unwrap();
        log.flush().unwrap();
        let path = log.path().to_path_buf();
        drop(log); // crash: no destroy, no clean-shutdown bookkeeping

        let len = std::fs::metadata(&path).unwrap().len();
        prop_assert!(len > 0);
        let offset = offset_seed % len;
        {
            let mut f = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .unwrap();
            let mut byte = [0u8; 1];
            f.seek(SeekFrom::Start(offset)).unwrap();
            f.read_exact(&mut byte).unwrap();
            f.seek(SeekFrom::Start(offset)).unwrap();
            f.write_all(&[byte[0] ^ mask]).unwrap();
        }

        let (mut recovered, report) = PagedEdgeLog::recover(&path, 4096, 2).unwrap();
        let survivors = recovered.scan_all().unwrap();
        prop_assert_eq!(survivors.len() as u64, report.records_recovered);
        prop_assert_eq!(&survivors, &records[..survivors.len()]);
        let corrupted_page = (offset / 4096) as u32;
        if survivors.len() < records.len() {
            // Loss accounted: the scan stopped exactly at the page we hit.
            prop_assert_eq!(report.first_torn_page, Some(corrupted_page));
            prop_assert!(report.bytes_truncated > 0);
            prop_assert_eq!(report.pages_recovered, u64::from(corrupted_page));
        } else {
            prop_assert_eq!(report.first_torn_page, None);
            prop_assert_eq!(report.bytes_truncated, 0);
        }
        recovered.destroy().unwrap();
    }
}

// ---- torn writes on disk ----------------------------------------------------

/// A page image corrupted on disk — truncated short or bit-flipped — must
/// fail verification on read instead of decoding garbage.
#[test]
fn torn_or_flipped_pages_are_rejected() {
    use std::io::{Seek, SeekFrom, Write};

    let mut pager = PageManager::create_temp(4096, "torn").unwrap();
    let id = pager.alloc();
    let mut page = Page::new(4096, id);
    assert!(page.push_record(b"payload-under-test"));
    pager.write_page(&mut page).unwrap();
    assert!(pager.read_page(id).is_ok(), "intact page reads back");
    let path = pager.path().to_path_buf();

    // Flip one payload byte behind the pager's back.
    {
        let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.seek(SeekFrom::Start(40)).unwrap();
        f.write_all(&[0xFF]).unwrap();
    }
    let err = pager.read_page(id).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(
        err.to_string().contains("torn or corrupt page"),
        "diagnostic names the page: {err}"
    );

    // Rewrite intact, then tear the page in half: the short read must
    // surface as an error, not a partial page.
    pager.write_page(&mut page).unwrap();
    assert!(pager.read_page(id).is_ok());
    std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .unwrap()
        .set_len(2048)
        .unwrap();
    assert!(pager.read_page(id).is_err(), "torn page must not decode");
    pager.destroy().unwrap();
}
