//! Fused neighbourhood-label counting for the filtering stage.
//!
//! The candidacy refresh (filtering rules f1–f3) needs, for one data vertex
//! `v`, the per-label counts of its incident live edges and of its
//! *distinct* neighbours, in both directions. The scalar formulation asks
//! the graph one question per `(query vertex, required label)` pair —
//! [`StreamingGraph::out_label_count`] and friends — and each question
//! re-walks the packed adjacency run of `v`. With `q` query vertices that is
//! `O(q · degree)` adjacency traffic for information that a single pass can
//! collect.
//!
//! [`NeighborhoodProfile`] is that single pass: one sweep per direction over
//! the packed [`AdjEntry`](crate::AdjEntry) run accumulates *all* per-label
//! edge counts and (deduplicated through a word-addressed
//! [`DenseBitSet`]) all per-label distinct-neighbour counts. Candidacy for
//! every query vertex is then answered from the profile in O(requirements)
//! with zero further graph traffic.
//!
//! # Wildcard semantics
//!
//! Label matching in Mnemonic is symmetric-wildcard: `a.matches(b)` iff
//! either side is the wildcard (`u16::MAX`) or they are equal — and
//! unlabelled data vertices read as wildcard, so wildcard *data* labels are
//! the common case, not a corner. [`LabelCounter`] therefore keeps a
//! dedicated wildcard slot next to the exact-label table and a running
//! total, which makes the filtered count a closed formula
//! ([`LabelCounter::count_matching`]):
//!
//! * required label = wildcard → every element matches → `total`;
//! * required label = `L` → elements labelled `L` plus wildcard-labelled
//!   elements → `exact(L) + wildcard`.
//!
//! For distinct-neighbour counts this decomposition is exact because each
//! vertex carries exactly one label: the label classes partition the
//! deduplicated neighbour set, so per-class distinct counts add up.
//!
//! The counter is generation-stamped like [`DenseBitSet`]: `clear` is O(1)
//! and the exact-label table is grown lazily to the largest label actually
//! seen, so recycled per-thread profiles are allocation-free in the steady
//! state.

use std::cell::RefCell;

use crate::bitset::DenseBitSet;
use crate::ids::{EdgeLabel, VertexId, VertexLabel};
use crate::multigraph::StreamingGraph;

/// Generation-stamped dense `u16 label -> count` accumulator with a
/// dedicated wildcard slot and a running total (see the module docs for the
/// wildcard decomposition it enables).
#[derive(Debug, Default)]
pub struct LabelCounter {
    /// `counts[l]` is meaningful only when `stamps[l] == epoch`.
    counts: Vec<u32>,
    stamps: Vec<u32>,
    epoch: u32,
    /// Count of wildcard-labelled (`u16::MAX`) elements.
    wildcard: u32,
    /// Count of all elements regardless of label.
    total: u32,
}

impl LabelCounter {
    /// Create an empty counter.
    pub fn new() -> Self {
        Self {
            counts: Vec::new(),
            stamps: Vec::new(),
            epoch: 1,
            wildcard: 0,
            total: 0,
        }
    }

    /// Reset every count in O(1) (generation bump; hard-clear on wrap).
    pub fn clear(&mut self) {
        self.wildcard = 0;
        self.total = 0;
        if self.epoch == u32::MAX {
            self.stamps.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Count one element labelled `label`.
    #[inline]
    pub fn add(&mut self, label: u16) {
        self.total += 1;
        if label == u16::MAX {
            self.wildcard += 1;
            return;
        }
        let i = label as usize;
        if i >= self.counts.len() {
            self.counts.resize(i + 1, 0);
            self.stamps.resize(i + 1, 0);
        }
        if self.stamps[i] != self.epoch {
            self.stamps[i] = self.epoch;
            self.counts[i] = 0;
        }
        self.counts[i] += 1;
    }

    /// Elements labelled exactly `label` (the wildcard label returns the
    /// wildcard slot).
    #[inline]
    pub fn exact(&self, label: u16) -> usize {
        if label == u16::MAX {
            return self.wildcard as usize;
        }
        let i = label as usize;
        match self.stamps.get(i) {
            Some(&stamp) if stamp == self.epoch => self.counts[i] as usize,
            _ => 0,
        }
    }

    /// Elements whose label `matches` the required `label` under the
    /// symmetric-wildcard rule: `total` for a wildcard requirement,
    /// `exact(label) + wildcard` otherwise.
    #[inline]
    pub fn count_matching(&self, label: u16) -> usize {
        if label == u16::MAX {
            self.total as usize
        } else {
            self.exact(label) + self.wildcard as usize
        }
    }

    /// All elements counted since the last clear.
    #[inline]
    pub fn total(&self) -> usize {
        self.total as usize
    }
}

/// One data vertex's complete per-label neighbourhood statistics, collected
/// in a single pass per direction (see the module docs).
#[derive(Debug, Default)]
pub struct NeighborhoodProfile {
    out_edges: LabelCounter,
    in_edges: LabelCounter,
    out_neighbors: LabelCounter,
    in_neighbors: LabelCounter,
    /// Distinct-neighbour dedup set, word-addressed by vertex id.
    seen: DenseBitSet,
}

impl NeighborhoodProfile {
    /// Recollect the profile of `v` from `graph`, replacing the previous
    /// contents. Allocation-free once the counters are warm.
    pub fn collect(&mut self, graph: &StreamingGraph, v: VertexId) {
        self.out_edges.clear();
        self.in_edges.clear();
        self.out_neighbors.clear();
        self.in_neighbors.clear();

        self.seen.clear();
        for entry in graph.outgoing(v) {
            let Some(edge) = graph.edge(entry.edge) else {
                continue;
            };
            self.out_edges.add(edge.label.0);
            if self.seen.insert(entry.neighbor.index()) {
                self.out_neighbors.add(graph.vertex_label(entry.neighbor).0);
            }
        }

        self.seen.clear();
        for entry in graph.incoming(v) {
            let Some(edge) = graph.edge(entry.edge) else {
                continue;
            };
            self.in_edges.add(edge.label.0);
            if self.seen.insert(entry.neighbor.index()) {
                self.in_neighbors.add(graph.vertex_label(entry.neighbor).0);
            }
        }
    }

    /// Live outgoing edges whose label matches `label` — equal to
    /// [`StreamingGraph::out_label_count`].
    #[inline]
    pub fn out_edge_count(&self, label: EdgeLabel) -> usize {
        self.out_edges.count_matching(label.0)
    }

    /// Live incoming edges whose label matches `label` — equal to
    /// [`StreamingGraph::in_label_count`].
    #[inline]
    pub fn in_edge_count(&self, label: EdgeLabel) -> usize {
        self.in_edges.count_matching(label.0)
    }

    /// Distinct out-neighbours whose vertex label matches `label` — equal to
    /// [`StreamingGraph::out_neighbor_label_count`].
    #[inline]
    pub fn out_neighbor_count(&self, label: VertexLabel) -> usize {
        self.out_neighbors.count_matching(label.0)
    }

    /// Distinct in-neighbours whose vertex label matches `label` — equal to
    /// [`StreamingGraph::in_neighbor_label_count`].
    #[inline]
    pub fn in_neighbor_count(&self, label: VertexLabel) -> usize {
        self.in_neighbors.count_matching(label.0)
    }
}

thread_local! {
    static PROFILE_SCRATCH: RefCell<NeighborhoodProfile> =
        RefCell::new(NeighborhoodProfile::default());
}

impl StreamingGraph {
    /// Collect the neighbourhood profile of `v` into this thread's recycled
    /// scratch profile and hand it to `f`. One adjacency sweep per direction
    /// answers every per-label count the filtering rules need; the scratch
    /// keeps its capacity across calls, so the steady state allocates
    /// nothing.
    ///
    /// `f` must not call back into `with_neighborhood_profile` on the same
    /// thread (single scratch per thread).
    pub fn with_neighborhood_profile<R>(
        &self,
        v: VertexId,
        f: impl FnOnce(&NeighborhoodProfile) -> R,
    ) -> R {
        PROFILE_SCRATCH.with(|cell| {
            let mut profile = cell.borrow_mut();
            profile.collect(self, v);
            f(&profile)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn label_counter_matches_scalar_semantics() {
        let mut counter = LabelCounter::new();
        for label in [3u16, 3, 5, u16::MAX, u16::MAX, 9] {
            counter.add(label);
        }
        assert_eq!(counter.total(), 6);
        assert_eq!(counter.exact(3), 2);
        assert_eq!(counter.exact(5), 1);
        assert_eq!(counter.exact(u16::MAX), 2);
        assert_eq!(counter.exact(7), 0);
        // matches(): wildcard requirement sees everything; a concrete
        // requirement sees its exact matches plus wildcard-labelled data.
        assert_eq!(counter.count_matching(u16::MAX), 6);
        assert_eq!(counter.count_matching(3), 4);
        assert_eq!(counter.count_matching(7), 2);
        counter.clear();
        assert_eq!(counter.total(), 0);
        assert_eq!(counter.count_matching(3), 0);
        counter.add(3);
        assert_eq!(counter.count_matching(3), 1);
    }

    #[test]
    fn profile_agrees_with_per_label_graph_scans() {
        // Vertices: 0 (label 1), 1 (label 2), 2 (wildcard/unlabelled),
        // 3 (label 1). Parallel edges and self-loops included.
        let graph = GraphBuilder::new()
            .vertex(0, 1)
            .vertex(1, 2)
            .vertex(3, 1)
            .edge(0, 1, 5)
            .edge(0, 1, 5)
            .edge(0, 2, u16::MAX)
            .edge(0, 3, 7)
            .edge(0, 0, 5)
            .edge(1, 0, 7)
            .edge(2, 0, 5)
            .edge(3, 0, u16::MAX)
            .build();

        let mut profile = NeighborhoodProfile::default();
        for raw in 0u32..4 {
            let v = VertexId(raw);
            profile.collect(&graph, v);
            for l in [0u16, 1, 2, 5, 7, u16::MAX] {
                let el = EdgeLabel(l);
                let vl = VertexLabel(l);
                assert_eq!(
                    profile.out_edge_count(el),
                    graph.out_label_count(v, el),
                    "out edges v={raw} l={l}"
                );
                assert_eq!(
                    profile.in_edge_count(el),
                    graph.in_label_count(v, el),
                    "in edges v={raw} l={l}"
                );
                assert_eq!(
                    profile.out_neighbor_count(vl),
                    graph.out_neighbor_label_count(v, vl),
                    "out neighbors v={raw} l={l}"
                );
                assert_eq!(
                    profile.in_neighbor_count(vl),
                    graph.in_neighbor_label_count(v, vl),
                    "in neighbors v={raw} l={l}"
                );
            }
        }
    }

    #[test]
    fn with_neighborhood_profile_recycles_scratch() {
        let graph = GraphBuilder::new().edge(0, 1, 3).edge(0, 2, 3).build();
        let first =
            graph.with_neighborhood_profile(VertexId(0), |p| p.out_edge_count(EdgeLabel(3)));
        assert_eq!(first, 2);
        // Second call on the same thread reuses the scratch and must not
        // leak counts from the first collection.
        let second = graph.with_neighborhood_profile(VertexId(1), |p| {
            (
                p.out_edge_count(EdgeLabel(3)),
                p.in_edge_count(EdgeLabel(3)),
            )
        });
        assert_eq!(second, (0, 1));
    }
}
