//! FIFO in-memory-window spill policy (Section IV-A, "External memory
//! support").
//!
//! Mnemonic keeps the newest edges in memory and moves edges older than a
//! user-controlled *in-memory window* into a buffer; once the buffer fills up
//! it is flushed to the transactional edge log. Vertex information always
//! stays in memory. The [`SpillManager`] implements exactly that policy on
//! top of one of two backends: the flat fixed-width
//! [`crate::edge_log::EdgeLog`] (seed behaviour) or, when a paged
//! [`StorageConfig`] is supplied, the delta-varint-compressed
//! [`PagedEdgeLog`] whose resident memory is bounded by the page cache.

use crate::edge::Edge;
use crate::edge_log::{EdgeLog, EdgeLogStats, LogRecord};
use crate::ids::{EdgeId, Timestamp, VertexId};
use crate::storage::{PagedEdgeLog, PagedLogStats, RecoveryReport, StorageConfig};
use std::collections::VecDeque;

/// Configuration of the spill policy.
#[derive(Debug, Clone, Copy)]
pub struct SpillConfig {
    /// Maximum number of edges kept in memory; older edges become spill
    /// candidates (the paper's "in-memory window", expressed in edges).
    pub in_memory_window: usize,
    /// Number of spill candidates buffered before they are written to disk in
    /// one transaction.
    pub buffer_capacity: usize,
}

impl Default for SpillConfig {
    fn default() -> Self {
        SpillConfig {
            in_memory_window: 1_000_000,
            buffer_capacity: 4096,
        }
    }
}

/// Summary of memory/disk occupancy, feeding Table III.
#[derive(Debug, Default, Clone, Copy)]
pub struct SpillStats {
    /// Edges currently tracked as in-memory.
    pub edges_in_memory: usize,
    /// Edges currently buffered awaiting a flush.
    pub edges_buffered: usize,
    /// Edges written to the log so far.
    pub edges_on_disk: u64,
    /// Number of flush transactions performed.
    pub flushes: u64,
    /// Underlying edge-log statistics. For the paged backend these are
    /// synthesised from [`PagedLogStats`] so flat-log consumers keep
    /// working unchanged.
    pub log: EdgeLogStats,
    /// Paged-backend statistics (compression, page cache); `None` when the
    /// spill tier writes the flat log.
    pub paged: Option<PagedLogStats>,
}

/// The disk tier behind a [`SpillManager`]: flat fixed-width log or the
/// paged compressed log.
#[derive(Debug)]
enum SpillBackend {
    /// Fixed-width append-only log (seed behaviour, default).
    Flat(EdgeLog),
    /// Delta-varint-compressed pages behind the page cache. Boxed: the
    /// paged log (cache frames + scratch buffers) dwarfs the flat variant.
    Paged(Box<PagedEdgeLog>),
}

impl SpillBackend {
    fn append_batch(&mut self, records: &[LogRecord]) -> std::io::Result<usize> {
        match self {
            SpillBackend::Flat(log) => log.append_batch(records),
            SpillBackend::Paged(log) => log.append_batch(records),
        }
    }

    fn fetch_outgoing(&mut self, v: VertexId) -> std::io::Result<Vec<LogRecord>> {
        match self {
            SpillBackend::Flat(log) => log.fetch_outgoing(v),
            SpillBackend::Paged(log) => log.fetch_outgoing(v),
        }
    }

    fn fetch_incoming(&mut self, v: VertexId) -> std::io::Result<Vec<LogRecord>> {
        match self {
            SpillBackend::Flat(log) => log.fetch_incoming(v),
            SpillBackend::Paged(log) => log.fetch_incoming(v),
        }
    }

    fn scan_all(&mut self) -> std::io::Result<Vec<LogRecord>> {
        match self {
            SpillBackend::Flat(log) => log.scan_all(),
            SpillBackend::Paged(log) => log.scan_all(),
        }
    }

    /// Flat-log-shaped statistics, synthesised for the paged backend so
    /// existing consumers of [`SpillStats::log`] keep working.
    fn log_stats(&self) -> EdgeLogStats {
        match self {
            SpillBackend::Flat(log) => log.stats(),
            SpillBackend::Paged(log) => {
                let s = log.stats();
                EdgeLogStats {
                    records_written: s.records_written,
                    records_read: s.records_read,
                    bytes_on_disk: s.bytes_on_disk,
                    fetch_transactions: s.fetch_transactions,
                }
            }
        }
    }

    fn paged_stats(&self) -> Option<PagedLogStats> {
        match self {
            SpillBackend::Flat(_) => None,
            SpillBackend::Paged(log) => Some(log.stats()),
        }
    }

    fn destroy(self) -> std::io::Result<()> {
        match self {
            SpillBackend::Flat(log) => log.destroy(),
            SpillBackend::Paged(log) => log.destroy(),
        }
    }
}

/// Tracks the FIFO in-memory window and spills overflowing edges to the
/// configured disk backend.
#[derive(Debug)]
pub struct SpillManager {
    config: SpillConfig,
    /// Insertion-ordered queue of in-memory edges: (edge id, timestamp).
    window: VecDeque<(EdgeId, Timestamp)>,
    /// Records waiting to be flushed.
    buffer: Vec<LogRecord>,
    log: SpillBackend,
    flushes: u64,
    spilled: u64,
    /// Auto-checkpoint cadence in newly sealed pages (0 = manual only).
    checkpoint_pages: usize,
    /// `pages_sealed` reading at the last checkpoint.
    pages_at_last_checkpoint: u64,
}

impl SpillManager {
    /// Create a spill manager writing to a fresh temporary flat log file.
    pub fn new_temp(config: SpillConfig, tag: &str) -> std::io::Result<Self> {
        Self::from_backend(config, SpillBackend::Flat(EdgeLog::create_temp(tag)?))
    }

    /// Create a spill manager writing a flat log to `path`.
    pub fn new(config: SpillConfig, path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Self::from_backend(config, SpillBackend::Flat(EdgeLog::create(path)?))
    }

    /// Create a spill manager whose backend is picked by `storage`, writing
    /// to a fresh temporary file: the flat log for
    /// [`crate::storage::StorageBackend::InMemory`], the paged compressed
    /// log for [`crate::storage::StorageBackend::Paged`].
    pub fn new_temp_with_storage(
        config: SpillConfig,
        storage: StorageConfig,
        tag: &str,
    ) -> std::io::Result<Self> {
        let backend = if storage.is_paged() {
            SpillBackend::Paged(Box::new(PagedEdgeLog::create_temp_with(
                storage.page_size,
                storage.cache_pages,
                tag,
                storage.fault,
            )?))
        } else {
            SpillBackend::Flat(EdgeLog::create_temp(tag)?)
        };
        let mut mgr = Self::from_backend(config, backend)?;
        mgr.checkpoint_pages = storage.checkpoint_pages;
        Ok(mgr)
    }

    /// Create a spill manager whose backend is picked by `storage`, writing
    /// to `path`.
    pub fn with_storage(
        config: SpillConfig,
        storage: StorageConfig,
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<Self> {
        let backend = if storage.is_paged() {
            SpillBackend::Paged(Box::new(PagedEdgeLog::create_with(
                path,
                storage.page_size,
                storage.cache_pages,
                storage.fault,
            )?))
        } else {
            SpillBackend::Flat(EdgeLog::create(path)?)
        };
        let mut mgr = Self::from_backend(config, backend)?;
        mgr.checkpoint_pages = storage.checkpoint_pages;
        Ok(mgr)
    }

    /// Recover a spill manager from the paged log a crashed session left at
    /// `path` (see [`PagedEdgeLog::recover`]): the log is scanned, the
    /// surviving prefix re-indexed (from the last checkpoint when one
    /// exists), and every truncated byte accounted in the returned
    /// [`RecoveryReport`]. The in-memory window restarts empty — the
    /// recovered records are the disk tier's content.
    ///
    /// # Errors
    /// [`std::io::ErrorKind::InvalidInput`] when `storage` is not paged
    /// (the flat log has no recovery scan); otherwise any
    /// [`PagedEdgeLog::recover`] error.
    pub fn recover(
        config: SpillConfig,
        storage: StorageConfig,
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<(Self, RecoveryReport)> {
        if !storage.is_paged() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "crash recovery requires the paged storage backend",
            ));
        }
        let (log, report) = PagedEdgeLog::recover(path, storage.page_size, storage.cache_pages)?;
        let mut mgr = Self::from_backend(config, SpillBackend::Paged(Box::new(log)))?;
        mgr.checkpoint_pages = storage.checkpoint_pages;
        mgr.spilled = report.records_recovered;
        mgr.pages_at_last_checkpoint = report.pages_recovered;
        Ok((mgr, report))
    }

    fn from_backend(config: SpillConfig, log: SpillBackend) -> std::io::Result<Self> {
        Ok(SpillManager {
            config,
            window: VecDeque::new(),
            buffer: Vec::new(),
            log,
            flushes: 0,
            spilled: 0,
            checkpoint_pages: 0,
            pages_at_last_checkpoint: 0,
        })
    }

    /// The configuration in effect.
    pub fn config(&self) -> SpillConfig {
        self.config
    }

    /// Whether the disk tier is the paged compressed log.
    pub fn is_paged(&self) -> bool {
        matches!(self.log, SpillBackend::Paged(_))
    }

    /// Resident pages held by the paged backend's cache (0 for the flat
    /// log, which has no resident-page budget).
    pub fn resident_pages(&self) -> usize {
        match &self.log {
            SpillBackend::Flat(_) => 0,
            SpillBackend::Paged(log) => log.resident_pages(),
        }
    }

    /// The paged backend's resident-page budget (`None` for the flat log).
    pub fn cache_capacity(&self) -> Option<usize> {
        match &self.log {
            SpillBackend::Flat(_) => None,
            SpillBackend::Paged(log) => Some(log.cache_capacity()),
        }
    }

    /// Record a newly inserted edge together with its current DEBI row.
    /// Returns ids of edges that were pushed out of the in-memory window by
    /// this insertion (they are now buffered or on disk).
    ///
    /// The spilled record only carries id/timestamp plus the DEBI row (the
    /// endpoints are stubbed) — enough for the overhead accounting. Callers
    /// that can still resolve the full edge should use
    /// [`SpillManager::on_insert_with`], which gives the disk tier usable
    /// adjacency information.
    pub fn on_insert(
        &mut self,
        edge: Edge,
        debi_row_of: impl Fn(EdgeId) -> u64,
    ) -> std::io::Result<Vec<EdgeId>> {
        self.on_insert_with(edge, |old_id, old_ts| LogRecord {
            edge: Edge {
                id: old_id,
                src: VertexId(0),
                dst: VertexId(0),
                label: crate::ids::WILDCARD_EDGE_LABEL,
                timestamp: old_ts,
            },
            debi_row: debi_row_of(old_id),
        })
    }

    /// Like [`SpillManager::on_insert`], but the caller supplies the
    /// complete [`LogRecord`] of every edge evicted from the in-memory
    /// window, so the spilled adjacency can actually be fetched back.
    pub fn on_insert_with(
        &mut self,
        edge: Edge,
        mut record_of: impl FnMut(EdgeId, Timestamp) -> LogRecord,
    ) -> std::io::Result<Vec<EdgeId>> {
        self.window.push_back((edge.id, edge.timestamp));
        let mut evicted = Vec::new();
        while self.window.len() > self.config.in_memory_window {
            if let Some((old_id, old_ts)) = self.window.pop_front() {
                evicted.push(old_id);
                self.buffer.push(record_of(old_id, old_ts));
            }
        }
        if self.buffer.len() >= self.config.buffer_capacity {
            self.flush()?;
        }
        Ok(evicted)
    }

    /// Spill a fully described edge record explicitly (used when the caller
    /// has the complete record in hand, which gives the disk tier usable
    /// adjacency information).
    pub fn spill_record(&mut self, record: LogRecord) -> std::io::Result<()> {
        self.buffer.push(record);
        if self.buffer.len() >= self.config.buffer_capacity {
            self.flush()?;
        }
        Ok(())
    }

    /// Force the buffered records onto disk. When an automatic checkpoint
    /// cadence is configured ([`StorageConfig::checkpoint_every`]) and
    /// enough new pages have been sealed since the last checkpoint, a
    /// snapshot checkpoint is written as part of the flush.
    pub fn flush(&mut self) -> std::io::Result<usize> {
        if self.buffer.is_empty() {
            self.maybe_checkpoint()?;
            return Ok(0);
        }
        let n = self.log.append_batch(&self.buffer)?;
        self.spilled += n as u64;
        self.buffer.clear();
        self.flushes += 1;
        self.maybe_checkpoint()?;
        Ok(n)
    }

    fn maybe_checkpoint(&mut self) -> std::io::Result<()> {
        if self.checkpoint_pages == 0 {
            return Ok(());
        }
        if let SpillBackend::Paged(log) = &mut self.log {
            let sealed = log.stats().pages_sealed;
            if sealed.saturating_sub(self.pages_at_last_checkpoint) >= self.checkpoint_pages as u64
            {
                log.checkpoint()?;
                self.pages_at_last_checkpoint = log.stats().pages_sealed;
            }
        }
        Ok(())
    }

    /// Write a snapshot checkpoint of the paged backend now (buffered
    /// records are flushed first). Returns the checkpointed record
    /// watermark, or `None` for the flat backend, which has no checkpoint
    /// format.
    pub fn checkpoint(&mut self) -> std::io::Result<Option<u64>> {
        if !self.buffer.is_empty() {
            let n = self.log.append_batch(&self.buffer)?;
            self.spilled += n as u64;
            self.buffer.clear();
            self.flushes += 1;
        }
        match &mut self.log {
            SpillBackend::Flat(_) => Ok(None),
            SpillBackend::Paged(log) => {
                let watermark = log.checkpoint()?;
                self.pages_at_last_checkpoint = log.stats().pages_sealed;
                Ok(Some(watermark))
            }
        }
    }

    /// Fetch the spilled outgoing records of a vertex from disk.
    pub fn fetch_outgoing(&mut self, v: VertexId) -> std::io::Result<Vec<LogRecord>> {
        self.log.fetch_outgoing(v)
    }

    /// Fetch the spilled incoming records of a vertex from disk.
    pub fn fetch_incoming(&mut self, v: VertexId) -> std::io::Result<Vec<LogRecord>> {
        self.log.fetch_incoming(v)
    }

    /// Every record on the disk tier, in append order — what a recovered
    /// session replays to re-prime its standing queries.
    pub fn scan_records(&mut self) -> std::io::Result<Vec<LogRecord>> {
        self.log.scan_all()
    }

    /// Current occupancy statistics.
    pub fn stats(&self) -> SpillStats {
        SpillStats {
            edges_in_memory: self.window.len(),
            edges_buffered: self.buffer.len(),
            edges_on_disk: self.spilled,
            flushes: self.flushes,
            log: self.log.log_stats(),
            paged: self.log.paged_stats(),
        }
    }

    /// Delete the backing log file.
    pub fn destroy(self) -> std::io::Result<()> {
        self.log.destroy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::EdgeLabel;

    fn edge(id: u32, ts: u64) -> Edge {
        Edge {
            id: EdgeId(id),
            src: VertexId(id),
            dst: VertexId(id + 1),
            label: EdgeLabel(0),
            timestamp: Timestamp(ts),
        }
    }

    #[test]
    fn window_evicts_oldest_edges_fifo() {
        let mut mgr = SpillManager::new_temp(
            SpillConfig {
                in_memory_window: 2,
                buffer_capacity: 100,
            },
            "fifo",
        )
        .unwrap();
        assert!(mgr.on_insert(edge(0, 0), |_| 0).unwrap().is_empty());
        assert!(mgr.on_insert(edge(1, 1), |_| 0).unwrap().is_empty());
        let evicted = mgr.on_insert(edge(2, 2), |_| 0).unwrap();
        assert_eq!(evicted, vec![EdgeId(0)]);
        let evicted = mgr.on_insert(edge(3, 3), |_| 0).unwrap();
        assert_eq!(evicted, vec![EdgeId(1)]);
        let stats = mgr.stats();
        assert_eq!(stats.edges_in_memory, 2);
        assert_eq!(stats.edges_buffered, 2);
        assert_eq!(stats.edges_on_disk, 0);
        mgr.destroy().unwrap();
    }

    #[test]
    fn buffer_flushes_at_capacity() {
        let mut mgr = SpillManager::new_temp(
            SpillConfig {
                in_memory_window: 1,
                buffer_capacity: 2,
            },
            "flush",
        )
        .unwrap();
        for i in 0..5u32 {
            mgr.on_insert(edge(i, i as u64), |id| id.0 as u64).unwrap();
        }
        let stats = mgr.stats();
        assert!(stats.flushes >= 1, "expected at least one automatic flush");
        assert!(stats.edges_on_disk >= 2);
        mgr.destroy().unwrap();
    }

    #[test]
    fn explicit_records_fetchable_by_vertex() {
        let mut mgr = SpillManager::new_temp(SpillConfig::default(), "explicit").unwrap();
        mgr.spill_record(LogRecord {
            edge: Edge {
                id: EdgeId(9),
                src: VertexId(3),
                dst: VertexId(4),
                label: EdgeLabel(1),
                timestamp: Timestamp(77),
            },
            debi_row: 0b101,
        })
        .unwrap();
        mgr.flush().unwrap();
        let got = mgr.fetch_outgoing(VertexId(3)).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].edge.id, EdgeId(9));
        assert_eq!(got[0].debi_row, 0b101);
        mgr.destroy().unwrap();
    }

    #[test]
    fn paged_backend_spills_full_records_and_reports_cache_stats() {
        let storage = StorageConfig::paged().page_size(4 * 1024).cache_pages(2);
        let mut mgr = SpillManager::new_temp_with_storage(
            SpillConfig {
                in_memory_window: 4,
                buffer_capacity: 8,
            },
            storage,
            "paged",
        )
        .unwrap();
        assert!(mgr.is_paged());
        assert_eq!(mgr.cache_capacity(), Some(2));
        // Evict plenty of edges with full records so the disk tier holds
        // usable adjacency.
        for i in 0..2_000u32 {
            let e = edge(i, i as u64);
            mgr.on_insert_with(e, |old_id, old_ts| LogRecord {
                edge: Edge {
                    id: old_id,
                    src: VertexId(old_id.0),
                    dst: VertexId(old_id.0 + 1),
                    label: EdgeLabel(0),
                    timestamp: old_ts,
                },
                debi_row: u64::from(old_id.0 % 8),
            })
            .unwrap();
        }
        mgr.flush().unwrap();
        let got = mgr.fetch_outgoing(VertexId(100)).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].edge.dst, VertexId(101));
        let stats = mgr.stats();
        assert_eq!(stats.edges_on_disk, 2_000 - 4);
        let paged = stats.paged.expect("paged backend reports paged stats");
        assert!(
            paged.compression_ratio() > 1.5,
            "{}",
            paged.compression_ratio()
        );
        assert!(mgr.resident_pages() <= 2);
        mgr.destroy().unwrap();
    }
}
