//! The paged, compressed edge log: the [`crate::edge_log::EdgeLog`]
//! replacement that stores records delta-varint-compressed in fixed-size
//! pages behind the RAM [`PageCache`].
//!
//! Records are appended to an in-memory **tail page**; when the tail fills
//! it is *sealed* — handed to the cache as a dirty page, written back to the
//! [`PageManager`] on eviction or flush — and a fresh tail starts. Per
//! vertex, the log keeps a [`PostingList`] of record *ordinals* (0, 1, 2, …
//! in append order), so a fetch streams exactly the pages containing that
//! vertex's records through the cache. Nothing in the read path
//! materialises a `Vec`: posting decoding, page pinning, and record
//! decoding all happen inside the iterators.
//!
//! # Record layout (inside a page)
//!
//! Each record is [length-prefixed](crate::storage::codec::write_record);
//! its payload is, in order: zigzag-varint **edge-id delta** vs the previous
//! record in the same page (dense recycled ids → tiny deltas), varint
//! src/dst/label, zigzag-varint **timestamp delta**, varint DEBI row. The
//! delta base resets at every page boundary, so any page decodes on its own.

use crate::edge::Edge;
use crate::edge_log::{LogRecord, LOG_RECORD_BYTES};
use crate::ids::{EdgeId, EdgeLabel, Timestamp, VertexId};
use crate::storage::cache::{PageCache, PageCacheStats};
use crate::storage::codec::{self, PostingCursor, PostingList};
use crate::storage::fault::FaultPlan;
use crate::storage::page::Page;
use crate::storage::pager::PageManager;
use std::io;
use std::path::{Path, PathBuf};

/// Statistics of one [`PagedEdgeLog`], including the compression it
/// achieves over the fixed 30-byte record encoding of the legacy log.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct PagedLogStats {
    /// Records appended over the lifetime of the log.
    pub records_written: u64,
    /// Records decoded back out of pages (fetch + scan).
    pub records_read: u64,
    /// Per-vertex fetch transactions.
    pub fetch_transactions: u64,
    /// Pages sealed (full tail pages handed to the cache).
    pub pages_sealed: u64,
    /// What the records would occupy in the legacy fixed-width encoding.
    pub raw_bytes: u64,
    /// What they actually occupy compressed (sealed payloads + tail).
    pub compressed_bytes: u64,
    /// In-memory size of the per-vertex posting index.
    pub posting_bytes: u64,
    /// Bytes the page file occupies on disk.
    pub bytes_on_disk: u64,
    /// Transient page-I/O failures that were retried (see
    /// [`crate::storage::PagerStats::io_retries`]).
    pub io_retries: u64,
    /// Page-I/O failures that surfaced permanently, exactly one per failed
    /// operation (see [`crate::storage::PagerStats::io_errors`]).
    pub io_errors: u64,
    /// Page-cache counters (hits/misses/evictions/write-backs).
    pub cache: PageCacheStats,
}

impl PagedLogStats {
    /// Raw-over-compressed ratio of the record storage (1.0 when empty;
    /// > 1 means the delta-varint encoding is winning).
    pub fn compression_ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.compressed_bytes as f64
        }
    }
}

/// What a [`PagedEdgeLog::recover`] scan found and did. Loss is **never
/// silent**: any byte dropped from the file is accounted in
/// [`RecoveryReport::bytes_truncated`], and the page that stopped the scan
/// (if any) is named in [`RecoveryReport::first_torn_page`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Page slots examined by the scan (checkpoint-covered pages are
    /// trusted and not re-scanned).
    pub pages_scanned: u64,
    /// Sealed pages in the recovered prefix, checkpoint-covered ones
    /// included.
    pub pages_recovered: u64,
    /// Records in the recovered log (`PagedEdgeLog::len` after recovery).
    pub records_recovered: u64,
    /// Records re-primed from the checkpoint sidecar instead of being
    /// re-decoded from pages (0 without a checkpoint).
    pub records_from_checkpoint: u64,
    /// Bytes physically dropped from the page file: everything at and past
    /// the first page that failed validation.
    pub bytes_truncated: u64,
    /// The slot that stopped the scan (torn, corrupt, or short), `None`
    /// when every scanned page validated.
    pub first_torn_page: Option<u32>,
}

/// Magic of the checkpoint sidecar file ("MNCK" little-endian).
const CHECKPOINT_MAGIC: u32 = 0x4D4E_434B;

/// Sidecar path of a page file: `<path>.ckpt`.
fn checkpoint_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".ckpt");
    PathBuf::from(os)
}

/// Decoded checkpoint sidecar: the sealed page directory, the per-vertex
/// posting tables, and the record watermark at checkpoint time.
#[derive(Debug)]
struct Checkpoint {
    watermark: u64,
    max_generation: u64,
    sealed_payload_bytes: u64,
    first_ordinals: Vec<u64>,
    by_src: Vec<PostingList>,
    by_dst: Vec<PostingList>,
}

fn read_posting_table(buf: &[u8], pos: &mut usize) -> Option<Vec<PostingList>> {
    let len = codec::read_varint_u64(buf, pos)? as usize;
    // A table can never hold more lists than bytes remain; rejects absurd
    // lengths before the allocation.
    if len > buf.len().saturating_sub(*pos) {
        return None;
    }
    let mut table = Vec::with_capacity(len);
    for _ in 0..len {
        table.push(PostingList::deserialize(buf, pos)?);
    }
    Some(table)
}

/// Read and verify the checkpoint sidecar of `path`. `None` when absent,
/// checksum-invalid, or written for a different page size — recovery then
/// falls back to a full scan.
fn read_checkpoint(path: &Path, page_size: usize) -> Option<Checkpoint> {
    let buf = std::fs::read(checkpoint_path(path)).ok()?;
    if buf.len() < 12 {
        return None;
    }
    let (body, tail) = buf.split_at(buf.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().ok()?);
    if codec::checksum(body) != stored {
        return None;
    }
    let mut pos = 0usize;
    let magic = u32::from_le_bytes(body.get(0..4)?.try_into().ok()?);
    pos += 4;
    if magic != CHECKPOINT_MAGIC {
        return None;
    }
    if codec::read_varint_u64(body, &mut pos)? != page_size as u64 {
        return None;
    }
    let watermark = codec::read_varint_u64(body, &mut pos)?;
    let max_generation = codec::read_varint_u64(body, &mut pos)?;
    let sealed_payload_bytes = codec::read_varint_u64(body, &mut pos)?;
    let directory = PostingList::deserialize(body, &mut pos)?;
    let by_src = read_posting_table(body, &mut pos)?;
    let by_dst = read_posting_table(body, &mut pos)?;
    if pos != body.len() {
        return None;
    }
    Some(Checkpoint {
        watermark,
        max_generation,
        sealed_payload_bytes,
        first_ordinals: directory.iter().collect(),
        by_src,
        by_dst,
    })
}

/// The per-vertex ordinal index plus the page directory. Kept apart from
/// [`PageStore`] so the read iterators can borrow the index immutably while
/// driving the store mutably (pins, reads) — a split borrow across fields.
#[derive(Debug, Default)]
struct LogIndex {
    by_src: Vec<PostingList>,
    by_dst: Vec<PostingList>,
    /// First record ordinal of each sealed page, ascending (parallel to
    /// `page_ids`): the page containing ordinal `o` is found by binary
    /// search.
    page_first_ordinal: Vec<u64>,
    /// Page id of each sealed page, in seal order.
    page_ids: Vec<u32>,
}

impl LogIndex {
    fn posting(table: &[PostingList], v: VertexId) -> Option<&PostingList> {
        table.get(v.index()).filter(|p| !p.is_empty())
    }

    fn push_posting(table: &mut Vec<PostingList>, v: VertexId, ordinal: u64) {
        if v.index() >= table.len() {
            table.resize_with(v.index() + 1, PostingList::new);
        }
        table[v.index()].push(ordinal);
    }

    fn posting_bytes(&self) -> u64 {
        let sum =
            |t: &[PostingList]| -> u64 { t.iter().map(|p| p.compressed_bytes() as u64).sum() };
        sum(&self.by_src) + sum(&self.by_dst)
    }
}

/// The mutable half the iterators drive: pager + cache + the unsealed tail.
#[derive(Debug)]
struct PageStore {
    pager: PageManager,
    cache: PageCache,
    tail: Page,
    /// Ordinal of the first record in the tail.
    tail_first_ordinal: u64,
    /// Delta bases of the last record encoded into the tail.
    prev_id: i64,
    prev_ts: i64,
    next_ordinal: u64,
    records_read: u64,
    fetch_transactions: u64,
    sealed_payload_bytes: u64,
    pages_sealed: u64,
    scratch: Vec<u8>,
}

/// Decode one record in place, advancing `offset` and the delta bases.
fn decode_record(
    payload: &[u8],
    offset: &mut usize,
    prev_id: &mut i64,
    prev_ts: &mut i64,
) -> io::Result<LogRecord> {
    let corrupt = || io::Error::new(io::ErrorKind::InvalidData, "corrupt paged log record");
    let rec = codec::read_record(payload, offset).ok_or_else(corrupt)?;
    let mut pos = 0;
    let id = *prev_id + codec::read_delta(rec, &mut pos).ok_or_else(corrupt)?;
    let src = codec::read_varint_u32(rec, &mut pos).ok_or_else(corrupt)?;
    let dst = codec::read_varint_u32(rec, &mut pos).ok_or_else(corrupt)?;
    let label = codec::read_varint_u32(rec, &mut pos).ok_or_else(corrupt)?;
    let ts = *prev_ts + codec::read_delta(rec, &mut pos).ok_or_else(corrupt)?;
    let debi_row = codec::read_varint_u64(rec, &mut pos).ok_or_else(corrupt)?;
    if pos != rec.len() {
        return Err(corrupt());
    }
    let id = u32::try_from(id).map_err(|_| corrupt())?;
    let label = u16::try_from(label).map_err(|_| corrupt())?;
    let ts = u64::try_from(ts).map_err(|_| corrupt())?;
    *prev_id = i64::from(id);
    *prev_ts = ts as i64;
    Ok(LogRecord {
        edge: Edge {
            id: EdgeId(id),
            src: VertexId(src),
            dst: VertexId(dst),
            label: EdgeLabel(label),
            timestamp: Timestamp(ts),
        },
        debi_row,
    })
}

impl PageStore {
    /// Encode `record` against the current tail delta bases into `scratch`.
    fn encode_into_scratch(&mut self, record: &LogRecord) {
        self.scratch.clear();
        codec::write_delta(
            &mut self.scratch,
            i64::from(record.edge.id.0) - self.prev_id,
        );
        codec::write_varint_u32(&mut self.scratch, record.edge.src.0);
        codec::write_varint_u32(&mut self.scratch, record.edge.dst.0);
        codec::write_varint_u32(&mut self.scratch, u32::from(record.edge.label.0));
        codec::write_delta(
            &mut self.scratch,
            record.edge.timestamp.0 as i64 - self.prev_ts,
        );
        codec::write_varint_u64(&mut self.scratch, record.debi_row);
    }

    /// Seal the tail into the cache (dirty) and start a fresh one.
    fn seal_tail(&mut self, index: &mut LogIndex) -> io::Result<()> {
        debug_assert!(self.tail.record_count() > 0, "sealing an empty tail");
        let new_id = self.pager.alloc();
        let sealed = std::mem::replace(&mut self.tail, Page::new(self.pager.page_size(), new_id));
        index.page_first_ordinal.push(self.tail_first_ordinal);
        index.page_ids.push(sealed.id());
        self.sealed_payload_bytes += sealed.used() as u64;
        self.pages_sealed += 1;
        self.cache.put_dirty(&mut self.pager, sealed)?;
        self.tail_first_ordinal = self.next_ordinal;
        self.prev_id = 0;
        self.prev_ts = 0;
        Ok(())
    }
}

/// Delta-varint-compressed, paged append-only edge log with per-vertex
/// posting lists. The drop-in paged backend behind
/// [`crate::spill::SpillManager`].
#[derive(Debug)]
pub struct PagedEdgeLog {
    index: LogIndex,
    store: PageStore,
}

impl PagedEdgeLog {
    /// Create a paged log whose page file lives at `path`.
    ///
    /// # Errors
    /// Invalid `page_size` (see [`PageManager::create`]) or file creation.
    pub fn create(
        path: impl AsRef<Path>,
        page_size: usize,
        cache_pages: usize,
    ) -> io::Result<Self> {
        Self::create_with(path, page_size, cache_pages, FaultPlan::default())
    }

    /// Create a paged log at `path` with a deterministic fault-injection
    /// plan installed on its page I/O (see [`crate::storage::fault`]).
    pub fn create_with(
        path: impl AsRef<Path>,
        page_size: usize,
        cache_pages: usize,
        fault: FaultPlan,
    ) -> io::Result<Self> {
        let mut pager = PageManager::create(path, page_size)?;
        pager.set_fault_plan(fault);
        // A freshly created (truncated) page file must not resurrect a
        // sidecar left behind by a previous incarnation at the same path.
        let _ = std::fs::remove_file(checkpoint_path(pager.path()));
        let first = pager.alloc();
        Ok(PagedEdgeLog {
            index: LogIndex::default(),
            store: PageStore {
                tail: Page::new(pager.page_size(), first),
                pager,
                cache: PageCache::new(cache_pages),
                tail_first_ordinal: 0,
                prev_id: 0,
                prev_ts: 0,
                next_ordinal: 0,
                records_read: 0,
                fetch_transactions: 0,
                sealed_payload_bytes: 0,
                pages_sealed: 0,
                scratch: Vec::new(),
            },
        })
    }

    /// Create a paged log in a fresh temporary location with a
    /// fault-injection plan installed.
    pub fn create_temp_with(
        page_size: usize,
        cache_pages: usize,
        tag: &str,
        fault: FaultPlan,
    ) -> io::Result<Self> {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "mnemonic-pagedlog-{}-{}-{}.bin",
            tag,
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        Self::create_with(path, page_size, cache_pages, fault)
    }

    /// Create a paged log in a fresh temporary location.
    pub fn create_temp(page_size: usize, cache_pages: usize, tag: &str) -> io::Result<Self> {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "mnemonic-pagedlog-{}-{}-{}.bin",
            tag,
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        Self::create(path, page_size, cache_pages)
    }

    /// Recover a paged log from the page file a crashed writer left at
    /// `path`.
    ///
    /// The scan validates every page slot **in order** (magic, slot id,
    /// FNV-1a checksum, record tiling, and a full decode of every record),
    /// stops at the first slot that fails, physically truncates the file to
    /// the surviving prefix, and rebuilds the page directory and the
    /// per-vertex posting lists from the surviving records. When a valid
    /// checkpoint sidecar (see [`PagedEdgeLog::checkpoint`]) covers a
    /// prefix of the file, the covered pages are re-primed from the sidecar
    /// and only the pages past the checkpoint watermark are scanned.
    ///
    /// Loss is never silent: the returned [`RecoveryReport`] accounts every
    /// truncated byte and names the first torn page. Records that were
    /// still in the in-memory tail or in dirty cache frames at crash time
    /// never reached the file and are therefore not the recovery scan's to
    /// find — the caller's replay source (e.g. the ingest batch log) covers
    /// that window.
    ///
    /// # Errors
    /// File-open failures ([`io::ErrorKind::NotFound`] when there is
    /// nothing to recover), an invalid `page_size`, or I/O failures while
    /// truncating. A corrupt *first* page is not an error: it recovers an
    /// empty log with everything accounted as truncated.
    pub fn recover(
        path: impl AsRef<Path>,
        page_size: usize,
        cache_pages: usize,
    ) -> io::Result<(Self, RecoveryReport)> {
        let path = path.as_ref();
        let mut pager = PageManager::open(path, page_size)?;
        let original_len = pager.file_len()?;
        let mut index = LogIndex::default();
        let mut report = RecoveryReport::default();
        let mut next_ordinal = 0u64;
        let mut sealed_payload_bytes = 0u64;
        let mut max_generation = 0u64;
        let mut start_page = 0u32;
        if let Some(ck) = read_checkpoint(path, page_size) {
            let pages = ck.first_ordinals.len() as u64;
            if pages <= u64::from(pager.slot_count()) {
                start_page = pages as u32;
                index.page_first_ordinal = ck.first_ordinals;
                index.page_ids = (0..start_page).collect();
                index.by_src = ck.by_src;
                index.by_dst = ck.by_dst;
                next_ordinal = ck.watermark;
                sealed_payload_bytes = ck.sealed_payload_bytes;
                max_generation = ck.max_generation;
                report.records_from_checkpoint = ck.watermark;
            }
        }
        let mut prefix_pages = start_page;
        'scan: for id in start_page..pager.slot_count() {
            report.pages_scanned += 1;
            let page = match pager.read_page_for_recovery(id) {
                Ok(page) => page,
                Err(_) => {
                    report.first_torn_page = Some(id);
                    break 'scan;
                }
            };
            // The checksum already vouches for the bytes; decoding every
            // record additionally vouches for the semantics (each page is
            // self-contained: delta bases reset at page boundaries).
            let mut offset = 0usize;
            let (mut prev_id, mut prev_ts) = (0i64, 0i64);
            let mut records = Vec::with_capacity(page.record_count() as usize);
            for _ in 0..page.record_count() {
                match decode_record(
                    page.payload_slice(),
                    &mut offset,
                    &mut prev_id,
                    &mut prev_ts,
                ) {
                    Ok(record) => records.push(record),
                    Err(_) => {
                        report.first_torn_page = Some(id);
                        break 'scan;
                    }
                }
            }
            index.page_first_ordinal.push(next_ordinal);
            index.page_ids.push(id);
            for record in &records {
                LogIndex::push_posting(&mut index.by_src, record.edge.src, next_ordinal);
                LogIndex::push_posting(&mut index.by_dst, record.edge.dst, next_ordinal);
                next_ordinal += 1;
            }
            sealed_payload_bytes += page.used() as u64;
            max_generation = max_generation.max(page.generation());
            prefix_pages = id + 1;
        }
        pager.truncate_to(prefix_pages)?;
        pager.assume_generation(max_generation);
        report.pages_recovered = u64::from(prefix_pages);
        report.records_recovered = next_ordinal;
        report.bytes_truncated =
            original_len.saturating_sub(u64::from(prefix_pages) * page_size as u64);
        let first = pager.alloc();
        let log = PagedEdgeLog {
            index,
            store: PageStore {
                tail: Page::new(page_size, first),
                pager,
                cache: PageCache::new(cache_pages),
                tail_first_ordinal: next_ordinal,
                prev_id: 0,
                prev_ts: 0,
                next_ordinal,
                records_read: 0,
                fetch_transactions: 0,
                sealed_payload_bytes,
                pages_sealed: u64::from(prefix_pages),
                scratch: Vec::new(),
            },
        };
        Ok((log, report))
    }

    /// Write a snapshot checkpoint: flush the log (sealing a non-empty
    /// tail), then atomically persist the sealed page directory, the
    /// per-vertex posting tables and the record watermark to the `<path>.ckpt`
    /// sidecar. A later [`PagedEdgeLog::recover`] re-primes from the
    /// sidecar instead of re-decoding the checkpointed pages. Returns the
    /// checkpointed record watermark.
    pub fn checkpoint(&mut self) -> io::Result<u64> {
        self.flush()?;
        debug_assert!(
            self.index
                .page_ids
                .iter()
                .enumerate()
                .all(|(i, &id)| id == i as u32),
            "the log seals pages into consecutive slots"
        );
        let mut body = Vec::new();
        body.extend_from_slice(&CHECKPOINT_MAGIC.to_le_bytes());
        codec::write_varint_u64(&mut body, self.store.pager.page_size() as u64);
        codec::write_varint_u64(&mut body, self.store.next_ordinal);
        codec::write_varint_u64(&mut body, self.store.pager.issued_generation());
        codec::write_varint_u64(&mut body, self.store.sealed_payload_bytes);
        let mut directory = PostingList::new();
        for &first in &self.index.page_first_ordinal {
            directory.push(first);
        }
        directory.serialize_into(&mut body);
        for table in [&self.index.by_src, &self.index.by_dst] {
            codec::write_varint_u64(&mut body, table.len() as u64);
            for posting in table {
                posting.serialize_into(&mut body);
            }
        }
        let sum = codec::checksum(&body);
        body.extend_from_slice(&sum.to_le_bytes());
        let target = checkpoint_path(self.path());
        let tmp = checkpoint_path(self.path()).with_extension("ckpt.tmp");
        std::fs::write(&tmp, &body)?;
        std::fs::rename(&tmp, &target)?;
        Ok(self.store.next_ordinal)
    }

    /// Path of the backing page file.
    pub fn path(&self) -> &Path {
        self.store.pager.path()
    }

    /// Number of records ever appended.
    pub fn len(&self) -> u64 {
        self.store.next_ordinal
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.store.next_ordinal == 0
    }

    /// Resident pages currently held by the cache (the memory bound the
    /// `paging_gate` checks against the configured budget).
    pub fn resident_pages(&self) -> usize {
        self.store.cache.resident_pages()
    }

    /// The cache's resident-page budget.
    pub fn cache_capacity(&self) -> usize {
        self.store.cache.capacity()
    }

    /// Current statistics.
    pub fn stats(&self) -> PagedLogStats {
        let pager = self.store.pager.stats();
        PagedLogStats {
            records_written: self.store.next_ordinal,
            records_read: self.store.records_read,
            fetch_transactions: self.store.fetch_transactions,
            pages_sealed: self.store.pages_sealed,
            raw_bytes: self.store.next_ordinal * LOG_RECORD_BYTES as u64,
            compressed_bytes: self.store.sealed_payload_bytes + self.store.tail.used() as u64,
            posting_bytes: self.index.posting_bytes(),
            bytes_on_disk: self.store.pager.bytes_on_disk(),
            io_retries: pager.io_retries,
            io_errors: pager.io_errors,
            cache: self.store.cache.stats(),
        }
    }

    /// Append a batch of records. Full tail pages are sealed into the cache
    /// as the batch streams in; actual disk writes happen on cache eviction
    /// or [`PagedEdgeLog::flush`].
    pub fn append_batch(&mut self, records: &[LogRecord]) -> io::Result<usize> {
        for record in records {
            let ordinal = self.store.next_ordinal;
            self.store.encode_into_scratch(record);
            if !self.store.tail.fits(self.store.scratch.len()) && self.store.tail.record_count() > 0
            {
                self.store.seal_tail(&mut self.index)?;
                // Delta bases reset with the fresh tail; re-encode.
                self.store.encode_into_scratch(record);
            }
            let scratch = std::mem::take(&mut self.store.scratch);
            let pushed = self.store.tail.push_record(&scratch);
            self.store.scratch = scratch;
            debug_assert!(pushed, "a record always fits an empty page");
            self.store.prev_id = i64::from(record.edge.id.0);
            self.store.prev_ts = record.edge.timestamp.0 as i64;
            self.store.next_ordinal += 1;
            LogIndex::push_posting(&mut self.index.by_src, record.edge.src, ordinal);
            LogIndex::push_posting(&mut self.index.by_dst, record.edge.dst, ordinal);
        }
        Ok(records.len())
    }

    /// Checkpoint: seal a non-empty tail and write back every dirty cached
    /// page, so the page file reflects every record appended so far.
    pub fn flush(&mut self) -> io::Result<()> {
        if self.store.tail.record_count() > 0 {
            self.store.seal_tail(&mut self.index)?;
        }
        self.store.cache.flush(&mut self.store.pager)
    }

    /// Stream the spilled records whose **source** vertex is `v`, oldest
    /// first, through the page cache. No `Vec` is materialised.
    pub fn fetch_outgoing_iter(&mut self, v: VertexId) -> PagedFetchIter<'_> {
        self.store.fetch_transactions += 1;
        PagedFetchIter {
            posting: LogIndex::posting(&self.index.by_src, v).map(|p| p.iter()),
            index: &self.index,
            store: &mut self.store,
            cur: None,
        }
    }

    /// Stream the spilled records whose **destination** vertex is `v`.
    pub fn fetch_incoming_iter(&mut self, v: VertexId) -> PagedFetchIter<'_> {
        self.store.fetch_transactions += 1;
        PagedFetchIter {
            posting: LogIndex::posting(&self.index.by_dst, v).map(|p| p.iter()),
            index: &self.index,
            store: &mut self.store,
            cur: None,
        }
    }

    /// Convenience collecting variant of [`PagedEdgeLog::fetch_outgoing_iter`].
    pub fn fetch_outgoing(&mut self, v: VertexId) -> io::Result<Vec<LogRecord>> {
        self.fetch_outgoing_iter(v).collect()
    }

    /// Convenience collecting variant of [`PagedEdgeLog::fetch_incoming_iter`].
    pub fn fetch_incoming(&mut self, v: VertexId) -> io::Result<Vec<LogRecord>> {
        self.fetch_incoming_iter(v).collect()
    }

    /// Stream every record in append order (sealed pages first, then the
    /// tail), through the cache, without materialising a `Vec`.
    pub fn scan_iter(&mut self) -> PagedScanIter<'_> {
        PagedScanIter {
            index: &self.index,
            store: &mut self.store,
            cur: None,
            next_ordinal: 0,
        }
    }

    /// Convenience collecting variant of [`PagedEdgeLog::scan_iter`].
    pub fn scan_all(&mut self) -> io::Result<Vec<LogRecord>> {
        self.scan_iter().collect()
    }

    /// Delete the backing page file (and any checkpoint sidecar). The log
    /// must not be used afterwards.
    pub fn destroy(self) -> io::Result<()> {
        let _ = std::fs::remove_file(checkpoint_path(self.path()));
        self.store.pager.destroy()
    }
}

/// Decode state within one pinned page (or the tail).
#[derive(Debug)]
struct PageCursor {
    /// Index into `LogIndex::page_ids`; `usize::MAX` marks the tail.
    page_idx: usize,
    /// Pinned cache frame (`None` for the tail, which lives off-cache).
    frame: Option<usize>,
    /// Ordinal of the page's first record.
    base_ordinal: u64,
    /// Records already decoded from this page.
    decoded: u64,
    offset: usize,
    prev_id: i64,
    prev_ts: i64,
}

const TAIL_PAGE: usize = usize::MAX;

/// Shared cursor logic: position on the page containing `ordinal` and
/// decode forward to it. Ordinals must be requested in increasing order —
/// both posting lists and scans are ascending by construction.
fn read_ordinal(
    index: &LogIndex,
    store: &mut PageStore,
    cur: &mut Option<PageCursor>,
    ordinal: u64,
) -> io::Result<LogRecord> {
    // Which page holds this ordinal?
    let (page_idx, base_ordinal) = if ordinal >= store.tail_first_ordinal {
        (TAIL_PAGE, store.tail_first_ordinal)
    } else {
        let i = index.page_first_ordinal.partition_point(|&f| f <= ordinal) - 1;
        (i, index.page_first_ordinal[i])
    };
    // (Re)position the cursor. A cursor already past the target within the
    // same page cannot happen: callers request strictly increasing ordinals.
    let reposition = match cur {
        Some(c) => c.page_idx != page_idx,
        None => true,
    };
    if reposition {
        if let Some(old) = cur.take() {
            if let Some(frame) = old.frame {
                store.cache.unpin(frame);
            }
        }
        let frame = if page_idx == TAIL_PAGE {
            None
        } else {
            Some(
                store
                    .cache
                    .pin(&mut store.pager, index.page_ids[page_idx])?,
            )
        };
        *cur = Some(PageCursor {
            page_idx,
            frame,
            base_ordinal,
            decoded: 0,
            offset: 0,
            prev_id: 0,
            prev_ts: 0,
        });
    }
    let c = cur.as_mut().expect("cursor was just installed");
    debug_assert!(ordinal >= c.base_ordinal + c.decoded, "ordinals go forward");
    let mut record = None;
    while c.base_ordinal + c.decoded <= ordinal {
        let page = match c.frame {
            Some(frame) => store.cache.page(frame),
            None => &store.tail,
        };
        let rec = decode_record(
            page.payload_slice(),
            &mut c.offset,
            &mut c.prev_id,
            &mut c.prev_ts,
        )?;
        c.decoded += 1;
        record = Some(rec);
    }
    store.records_read += 1;
    Ok(record.expect("the loop ran at least once"))
}

/// Streaming per-vertex fetch over a [`PagedEdgeLog`] (see
/// [`PagedEdgeLog::fetch_outgoing_iter`]). Pins one page at a time; the pin
/// is released when the iterator moves to another page or is dropped.
#[derive(Debug)]
pub struct PagedFetchIter<'a> {
    posting: Option<PostingCursor<'a>>,
    index: &'a LogIndex,
    store: &'a mut PageStore,
    cur: Option<PageCursor>,
}

impl Iterator for PagedFetchIter<'_> {
    type Item = io::Result<LogRecord>;

    fn next(&mut self) -> Option<io::Result<LogRecord>> {
        let ordinal = self.posting.as_mut()?.next()?;
        Some(read_ordinal(self.index, self.store, &mut self.cur, ordinal))
    }
}

impl Drop for PagedFetchIter<'_> {
    fn drop(&mut self) {
        if let Some(cur) = self.cur.take() {
            if let Some(frame) = cur.frame {
                self.store.cache.unpin(frame);
            }
        }
    }
}

/// Streaming full scan in append order (see [`PagedEdgeLog::scan_iter`]).
#[derive(Debug)]
pub struct PagedScanIter<'a> {
    index: &'a LogIndex,
    store: &'a mut PageStore,
    cur: Option<PageCursor>,
    next_ordinal: u64,
}

impl Iterator for PagedScanIter<'_> {
    type Item = io::Result<LogRecord>;

    fn next(&mut self) -> Option<io::Result<LogRecord>> {
        if self.next_ordinal >= self.store.next_ordinal {
            return None;
        }
        let ordinal = self.next_ordinal;
        self.next_ordinal += 1;
        Some(read_ordinal(self.index, self.store, &mut self.cur, ordinal))
    }
}

impl Drop for PagedScanIter<'_> {
    fn drop(&mut self) {
        if let Some(cur) = self.cur.take() {
            if let Some(frame) = cur.frame {
                self.store.cache.unpin(frame);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::page::MIN_PAGE_SIZE;

    fn rec(id: u32, s: u32, d: u32, l: u16, ts: u64, row: u64) -> LogRecord {
        LogRecord {
            edge: Edge {
                id: EdgeId(id),
                src: VertexId(s),
                dst: VertexId(d),
                label: EdgeLabel(l),
                timestamp: Timestamp(ts),
            },
            debi_row: row,
        }
    }

    #[test]
    fn append_scan_fetch_roundtrip() {
        let mut log = PagedEdgeLog::create_temp(MIN_PAGE_SIZE, 4, "roundtrip").unwrap();
        let records: Vec<LogRecord> = (0..10_000u32)
            .map(|i| {
                rec(
                    i,
                    i % 97,
                    (i * 7) % 89,
                    (i % 5) as u16,
                    1000 + i as u64,
                    (i % 64) as u64,
                )
            })
            .collect();
        log.append_batch(&records).unwrap();
        assert_eq!(log.len(), 10_000);
        let back = log.scan_all().unwrap();
        assert_eq!(back, records);
        // Per-vertex fetch matches a filter of the append order.
        let got = log.fetch_outgoing(VertexId(13)).unwrap();
        let want: Vec<LogRecord> = records
            .iter()
            .copied()
            .filter(|r| r.edge.src == VertexId(13))
            .collect();
        assert_eq!(got, want);
        let got = log.fetch_incoming(VertexId(21)).unwrap();
        let want: Vec<LogRecord> = records
            .iter()
            .copied()
            .filter(|r| r.edge.dst == VertexId(21))
            .collect();
        assert_eq!(got, want);
        // Dense sequential ids must compress well below the raw encoding.
        let stats = log.stats();
        assert!(
            stats.compression_ratio() > 2.0,
            "{}",
            stats.compression_ratio()
        );
        assert!(stats.pages_sealed > 0);
        log.destroy().unwrap();
    }

    #[test]
    fn resident_pages_stay_within_the_cache_budget() {
        let mut log = PagedEdgeLog::create_temp(MIN_PAGE_SIZE, 2, "budget").unwrap();
        let records: Vec<LogRecord> = (0..20_000u32)
            .map(|i| rec(i, i % 11, i % 7, 0, i as u64, 0))
            .collect();
        log.append_batch(&records).unwrap();
        assert!(
            log.stats().pages_sealed > 10,
            "needs many pages to be a real test"
        );
        assert!(log.resident_pages() <= 2);
        let total: usize = (0..11u32)
            .map(|v| log.fetch_outgoing(VertexId(v)).unwrap().len())
            .sum();
        assert_eq!(total, 20_000);
        assert!(log.resident_pages() <= 2);
        let stats = log.stats();
        assert!(stats.cache.evictions > 0);
        assert!(
            stats.cache.write_backs > 0,
            "evicting dirty pages writes them back"
        );
        log.destroy().unwrap();
    }

    #[test]
    fn flush_persists_and_survives_reread() {
        let mut log = PagedEdgeLog::create_temp(MIN_PAGE_SIZE, 2, "flush").unwrap();
        let records: Vec<LogRecord> = (0..5_000u32)
            .map(|i| rec(i, i % 3, i % 5, 1, i as u64, 7))
            .collect();
        log.append_batch(&records).unwrap();
        log.flush().unwrap();
        assert_eq!(log.scan_all().unwrap(), records);
        let stats = log.stats();
        assert!(stats.bytes_on_disk > 0);
        log.destroy().unwrap();
    }

    fn make_records(n: u32) -> Vec<LogRecord> {
        (0..n)
            .map(|i| {
                rec(
                    i,
                    i % 97,
                    (i * 7) % 89,
                    (i % 5) as u16,
                    1000 + u64::from(i),
                    u64::from(i % 64),
                )
            })
            .collect()
    }

    #[test]
    fn recover_after_clean_shutdown_is_lossless() {
        let mut log = PagedEdgeLog::create_temp(MIN_PAGE_SIZE, 4, "recover-clean").unwrap();
        let records = make_records(5_000);
        log.append_batch(&records).unwrap();
        log.flush().unwrap();
        let path = log.path().to_path_buf();
        drop(log); // crash without destroy: the page file stays behind
        let (mut recovered, report) = PagedEdgeLog::recover(&path, MIN_PAGE_SIZE, 4).unwrap();
        assert_eq!(recovered.scan_all().unwrap(), records);
        assert_eq!(report.records_recovered, 5_000);
        assert_eq!(report.bytes_truncated, 0);
        assert_eq!(report.first_torn_page, None);
        assert!(report.pages_recovered > 1);
        // The recovered log keeps working: fetches and appends still land.
        let got = recovered.fetch_outgoing(VertexId(13)).unwrap();
        let want: Vec<LogRecord> = records
            .iter()
            .copied()
            .filter(|r| r.edge.src == VertexId(13))
            .collect();
        assert_eq!(got, want);
        recovered.append_batch(&make_records(100)).unwrap();
        assert_eq!(recovered.len(), 5_100);
        recovered.destroy().unwrap();
    }

    #[test]
    fn recover_truncates_at_an_injected_torn_write() {
        let fault = FaultPlan {
            seed: 1234,
            torn_write: 3, // the third page write persists only a prefix
            ..FaultPlan::default()
        };
        let mut log =
            PagedEdgeLog::create_temp_with(MIN_PAGE_SIZE, 2, "recover-torn", fault).unwrap();
        let records = make_records(8_000);
        log.append_batch(&records).unwrap();
        log.flush().unwrap(); // the tear is silent: flush still reports success
        let pages = log.stats().pages_sealed;
        assert!(pages > 3, "needs enough pages for the tear to bite");
        let path = log.path().to_path_buf();
        drop(log);
        let (mut recovered, report) = PagedEdgeLog::recover(&path, MIN_PAGE_SIZE, 2).unwrap();
        // The cache flushes pages in slot order here, so write ordinal 3 is
        // slot 2: pages 0 and 1 survive, everything after is dropped.
        let survivors = recovered.scan_all().unwrap();
        assert_eq!(survivors.len() as u64, report.records_recovered);
        assert!(report.records_recovered > 0, "the clean prefix survives");
        assert!(
            (report.records_recovered as usize) < records.len(),
            "the tear costs records"
        );
        assert_eq!(survivors.as_slice(), &records[..survivors.len()]);
        assert!(report.bytes_truncated > 0, "loss is accounted, not silent");
        assert_eq!(report.first_torn_page, Some(report.pages_recovered as u32));
        recovered.destroy().unwrap();
    }

    #[test]
    fn recover_reprimes_from_a_checkpoint_and_scans_the_rest() {
        let mut log = PagedEdgeLog::create_temp(MIN_PAGE_SIZE, 4, "recover-ckpt").unwrap();
        let first_half = make_records(4_000);
        log.append_batch(&first_half).unwrap();
        let watermark = log.checkpoint().unwrap();
        assert_eq!(watermark, 4_000);
        let second_half: Vec<LogRecord> = make_records(8_000)[4_000..].to_vec();
        log.append_batch(&second_half).unwrap();
        log.flush().unwrap();
        let path = log.path().to_path_buf();
        drop(log);
        let (mut recovered, report) = PagedEdgeLog::recover(&path, MIN_PAGE_SIZE, 4).unwrap();
        assert_eq!(report.records_from_checkpoint, 4_000);
        assert_eq!(report.records_recovered, 8_000);
        assert!(
            report.pages_scanned < report.pages_recovered,
            "checkpointed pages are re-primed, not re-scanned"
        );
        let all = recovered.scan_all().unwrap();
        assert_eq!(all, make_records(8_000));
        // Posting lists from the checkpoint and from the scan splice
        // seamlessly.
        let got = recovered.fetch_outgoing(VertexId(42)).unwrap();
        let want: Vec<LogRecord> = make_records(8_000)
            .into_iter()
            .filter(|r| r.edge.src == VertexId(42))
            .collect();
        assert_eq!(got, want);
        recovered.destroy().unwrap();
    }

    #[test]
    fn recover_from_a_corrupt_first_page_yields_an_empty_log() {
        let mut log = PagedEdgeLog::create_temp(MIN_PAGE_SIZE, 2, "recover-zero").unwrap();
        log.append_batch(&make_records(2_000)).unwrap();
        log.flush().unwrap();
        let path = log.path().to_path_buf();
        drop(log);
        // Stomp the first page's checksum region.
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(0)).unwrap();
            f.write_all(&[0xFF; 64]).unwrap();
        }
        let (mut recovered, report) = PagedEdgeLog::recover(&path, MIN_PAGE_SIZE, 2).unwrap();
        assert_eq!(report.records_recovered, 0);
        assert_eq!(report.first_torn_page, Some(0));
        assert!(report.bytes_truncated > 0);
        assert!(recovered.is_empty());
        assert!(recovered.scan_all().unwrap().is_empty());
        recovered.append_batch(&make_records(10)).unwrap();
        assert_eq!(recovered.len(), 10);
        recovered.destroy().unwrap();
    }

    #[test]
    fn empty_log_and_missing_vertex() {
        let mut log = PagedEdgeLog::create_temp(MIN_PAGE_SIZE, 2, "empty").unwrap();
        assert!(log.is_empty());
        assert!(log.scan_all().unwrap().is_empty());
        assert!(log.fetch_outgoing(VertexId(42)).unwrap().is_empty());
        log.append_batch(&[]).unwrap();
        assert!(log.is_empty());
        log.destroy().unwrap();
    }
}
