//! The paged, compressed edge log: the [`crate::edge_log::EdgeLog`]
//! replacement that stores records delta-varint-compressed in fixed-size
//! pages behind the RAM [`PageCache`].
//!
//! Records are appended to an in-memory **tail page**; when the tail fills
//! it is *sealed* — handed to the cache as a dirty page, written back to the
//! [`PageManager`] on eviction or flush — and a fresh tail starts. Per
//! vertex, the log keeps a [`PostingList`] of record *ordinals* (0, 1, 2, …
//! in append order), so a fetch streams exactly the pages containing that
//! vertex's records through the cache. Nothing in the read path
//! materialises a `Vec`: posting decoding, page pinning, and record
//! decoding all happen inside the iterators.
//!
//! # Record layout (inside a page)
//!
//! Each record is [length-prefixed](crate::storage::codec::write_record);
//! its payload is, in order: zigzag-varint **edge-id delta** vs the previous
//! record in the same page (dense recycled ids → tiny deltas), varint
//! src/dst/label, zigzag-varint **timestamp delta**, varint DEBI row. The
//! delta base resets at every page boundary, so any page decodes on its own.

use crate::edge::Edge;
use crate::edge_log::{LogRecord, LOG_RECORD_BYTES};
use crate::ids::{EdgeId, EdgeLabel, Timestamp, VertexId};
use crate::storage::cache::{PageCache, PageCacheStats};
use crate::storage::codec::{self, PostingCursor, PostingList};
use crate::storage::page::Page;
use crate::storage::pager::PageManager;
use std::io;
use std::path::Path;

/// Statistics of one [`PagedEdgeLog`], including the compression it
/// achieves over the fixed 30-byte record encoding of the legacy log.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct PagedLogStats {
    /// Records appended over the lifetime of the log.
    pub records_written: u64,
    /// Records decoded back out of pages (fetch + scan).
    pub records_read: u64,
    /// Per-vertex fetch transactions.
    pub fetch_transactions: u64,
    /// Pages sealed (full tail pages handed to the cache).
    pub pages_sealed: u64,
    /// What the records would occupy in the legacy fixed-width encoding.
    pub raw_bytes: u64,
    /// What they actually occupy compressed (sealed payloads + tail).
    pub compressed_bytes: u64,
    /// In-memory size of the per-vertex posting index.
    pub posting_bytes: u64,
    /// Bytes the page file occupies on disk.
    pub bytes_on_disk: u64,
    /// Page-cache counters (hits/misses/evictions/write-backs).
    pub cache: PageCacheStats,
}

impl PagedLogStats {
    /// Raw-over-compressed ratio of the record storage (1.0 when empty;
    /// > 1 means the delta-varint encoding is winning).
    pub fn compression_ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.compressed_bytes as f64
        }
    }
}

/// The per-vertex ordinal index plus the page directory. Kept apart from
/// [`PageStore`] so the read iterators can borrow the index immutably while
/// driving the store mutably (pins, reads) — a split borrow across fields.
#[derive(Debug, Default)]
struct LogIndex {
    by_src: Vec<PostingList>,
    by_dst: Vec<PostingList>,
    /// First record ordinal of each sealed page, ascending (parallel to
    /// `page_ids`): the page containing ordinal `o` is found by binary
    /// search.
    page_first_ordinal: Vec<u64>,
    /// Page id of each sealed page, in seal order.
    page_ids: Vec<u32>,
}

impl LogIndex {
    fn posting(table: &[PostingList], v: VertexId) -> Option<&PostingList> {
        table.get(v.index()).filter(|p| !p.is_empty())
    }

    fn push_posting(table: &mut Vec<PostingList>, v: VertexId, ordinal: u64) {
        if v.index() >= table.len() {
            table.resize_with(v.index() + 1, PostingList::new);
        }
        table[v.index()].push(ordinal);
    }

    fn posting_bytes(&self) -> u64 {
        let sum =
            |t: &[PostingList]| -> u64 { t.iter().map(|p| p.compressed_bytes() as u64).sum() };
        sum(&self.by_src) + sum(&self.by_dst)
    }
}

/// The mutable half the iterators drive: pager + cache + the unsealed tail.
#[derive(Debug)]
struct PageStore {
    pager: PageManager,
    cache: PageCache,
    tail: Page,
    /// Ordinal of the first record in the tail.
    tail_first_ordinal: u64,
    /// Delta bases of the last record encoded into the tail.
    prev_id: i64,
    prev_ts: i64,
    next_ordinal: u64,
    records_read: u64,
    fetch_transactions: u64,
    sealed_payload_bytes: u64,
    pages_sealed: u64,
    scratch: Vec<u8>,
}

/// Decode one record in place, advancing `offset` and the delta bases.
fn decode_record(
    payload: &[u8],
    offset: &mut usize,
    prev_id: &mut i64,
    prev_ts: &mut i64,
) -> io::Result<LogRecord> {
    let corrupt = || io::Error::new(io::ErrorKind::InvalidData, "corrupt paged log record");
    let rec = codec::read_record(payload, offset).ok_or_else(corrupt)?;
    let mut pos = 0;
    let id = *prev_id + codec::read_delta(rec, &mut pos).ok_or_else(corrupt)?;
    let src = codec::read_varint_u32(rec, &mut pos).ok_or_else(corrupt)?;
    let dst = codec::read_varint_u32(rec, &mut pos).ok_or_else(corrupt)?;
    let label = codec::read_varint_u32(rec, &mut pos).ok_or_else(corrupt)?;
    let ts = *prev_ts + codec::read_delta(rec, &mut pos).ok_or_else(corrupt)?;
    let debi_row = codec::read_varint_u64(rec, &mut pos).ok_or_else(corrupt)?;
    if pos != rec.len() {
        return Err(corrupt());
    }
    let id = u32::try_from(id).map_err(|_| corrupt())?;
    let label = u16::try_from(label).map_err(|_| corrupt())?;
    let ts = u64::try_from(ts).map_err(|_| corrupt())?;
    *prev_id = i64::from(id);
    *prev_ts = ts as i64;
    Ok(LogRecord {
        edge: Edge {
            id: EdgeId(id),
            src: VertexId(src),
            dst: VertexId(dst),
            label: EdgeLabel(label),
            timestamp: Timestamp(ts),
        },
        debi_row,
    })
}

impl PageStore {
    /// Encode `record` against the current tail delta bases into `scratch`.
    fn encode_into_scratch(&mut self, record: &LogRecord) {
        self.scratch.clear();
        codec::write_delta(
            &mut self.scratch,
            i64::from(record.edge.id.0) - self.prev_id,
        );
        codec::write_varint_u32(&mut self.scratch, record.edge.src.0);
        codec::write_varint_u32(&mut self.scratch, record.edge.dst.0);
        codec::write_varint_u32(&mut self.scratch, u32::from(record.edge.label.0));
        codec::write_delta(
            &mut self.scratch,
            record.edge.timestamp.0 as i64 - self.prev_ts,
        );
        codec::write_varint_u64(&mut self.scratch, record.debi_row);
    }

    /// Seal the tail into the cache (dirty) and start a fresh one.
    fn seal_tail(&mut self, index: &mut LogIndex) -> io::Result<()> {
        debug_assert!(self.tail.record_count() > 0, "sealing an empty tail");
        let new_id = self.pager.alloc();
        let sealed = std::mem::replace(&mut self.tail, Page::new(self.pager.page_size(), new_id));
        index.page_first_ordinal.push(self.tail_first_ordinal);
        index.page_ids.push(sealed.id());
        self.sealed_payload_bytes += sealed.used() as u64;
        self.pages_sealed += 1;
        self.cache.put_dirty(&mut self.pager, sealed)?;
        self.tail_first_ordinal = self.next_ordinal;
        self.prev_id = 0;
        self.prev_ts = 0;
        Ok(())
    }
}

/// Delta-varint-compressed, paged append-only edge log with per-vertex
/// posting lists. The drop-in paged backend behind
/// [`crate::spill::SpillManager`].
#[derive(Debug)]
pub struct PagedEdgeLog {
    index: LogIndex,
    store: PageStore,
}

impl PagedEdgeLog {
    /// Create a paged log whose page file lives at `path`.
    ///
    /// # Errors
    /// Invalid `page_size` (see [`PageManager::create`]) or file creation.
    pub fn create(
        path: impl AsRef<Path>,
        page_size: usize,
        cache_pages: usize,
    ) -> io::Result<Self> {
        let mut pager = PageManager::create(path, page_size)?;
        let first = pager.alloc();
        Ok(PagedEdgeLog {
            index: LogIndex::default(),
            store: PageStore {
                tail: Page::new(pager.page_size(), first),
                pager,
                cache: PageCache::new(cache_pages),
                tail_first_ordinal: 0,
                prev_id: 0,
                prev_ts: 0,
                next_ordinal: 0,
                records_read: 0,
                fetch_transactions: 0,
                sealed_payload_bytes: 0,
                pages_sealed: 0,
                scratch: Vec::new(),
            },
        })
    }

    /// Create a paged log in a fresh temporary location.
    pub fn create_temp(page_size: usize, cache_pages: usize, tag: &str) -> io::Result<Self> {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "mnemonic-pagedlog-{}-{}-{}.bin",
            tag,
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        Self::create(path, page_size, cache_pages)
    }

    /// Path of the backing page file.
    pub fn path(&self) -> &Path {
        self.store.pager.path()
    }

    /// Number of records ever appended.
    pub fn len(&self) -> u64 {
        self.store.next_ordinal
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.store.next_ordinal == 0
    }

    /// Resident pages currently held by the cache (the memory bound the
    /// `paging_gate` checks against the configured budget).
    pub fn resident_pages(&self) -> usize {
        self.store.cache.resident_pages()
    }

    /// The cache's resident-page budget.
    pub fn cache_capacity(&self) -> usize {
        self.store.cache.capacity()
    }

    /// Current statistics.
    pub fn stats(&self) -> PagedLogStats {
        PagedLogStats {
            records_written: self.store.next_ordinal,
            records_read: self.store.records_read,
            fetch_transactions: self.store.fetch_transactions,
            pages_sealed: self.store.pages_sealed,
            raw_bytes: self.store.next_ordinal * LOG_RECORD_BYTES as u64,
            compressed_bytes: self.store.sealed_payload_bytes + self.store.tail.used() as u64,
            posting_bytes: self.index.posting_bytes(),
            bytes_on_disk: self.store.pager.bytes_on_disk(),
            cache: self.store.cache.stats(),
        }
    }

    /// Append a batch of records. Full tail pages are sealed into the cache
    /// as the batch streams in; actual disk writes happen on cache eviction
    /// or [`PagedEdgeLog::flush`].
    pub fn append_batch(&mut self, records: &[LogRecord]) -> io::Result<usize> {
        for record in records {
            let ordinal = self.store.next_ordinal;
            self.store.encode_into_scratch(record);
            if !self.store.tail.fits(self.store.scratch.len()) && self.store.tail.record_count() > 0
            {
                self.store.seal_tail(&mut self.index)?;
                // Delta bases reset with the fresh tail; re-encode.
                self.store.encode_into_scratch(record);
            }
            let scratch = std::mem::take(&mut self.store.scratch);
            let pushed = self.store.tail.push_record(&scratch);
            self.store.scratch = scratch;
            debug_assert!(pushed, "a record always fits an empty page");
            self.store.prev_id = i64::from(record.edge.id.0);
            self.store.prev_ts = record.edge.timestamp.0 as i64;
            self.store.next_ordinal += 1;
            LogIndex::push_posting(&mut self.index.by_src, record.edge.src, ordinal);
            LogIndex::push_posting(&mut self.index.by_dst, record.edge.dst, ordinal);
        }
        Ok(records.len())
    }

    /// Checkpoint: seal a non-empty tail and write back every dirty cached
    /// page, so the page file reflects every record appended so far.
    pub fn flush(&mut self) -> io::Result<()> {
        if self.store.tail.record_count() > 0 {
            self.store.seal_tail(&mut self.index)?;
        }
        self.store.cache.flush(&mut self.store.pager)
    }

    /// Stream the spilled records whose **source** vertex is `v`, oldest
    /// first, through the page cache. No `Vec` is materialised.
    pub fn fetch_outgoing_iter(&mut self, v: VertexId) -> PagedFetchIter<'_> {
        self.store.fetch_transactions += 1;
        PagedFetchIter {
            posting: LogIndex::posting(&self.index.by_src, v).map(|p| p.iter()),
            index: &self.index,
            store: &mut self.store,
            cur: None,
        }
    }

    /// Stream the spilled records whose **destination** vertex is `v`.
    pub fn fetch_incoming_iter(&mut self, v: VertexId) -> PagedFetchIter<'_> {
        self.store.fetch_transactions += 1;
        PagedFetchIter {
            posting: LogIndex::posting(&self.index.by_dst, v).map(|p| p.iter()),
            index: &self.index,
            store: &mut self.store,
            cur: None,
        }
    }

    /// Convenience collecting variant of [`PagedEdgeLog::fetch_outgoing_iter`].
    pub fn fetch_outgoing(&mut self, v: VertexId) -> io::Result<Vec<LogRecord>> {
        self.fetch_outgoing_iter(v).collect()
    }

    /// Convenience collecting variant of [`PagedEdgeLog::fetch_incoming_iter`].
    pub fn fetch_incoming(&mut self, v: VertexId) -> io::Result<Vec<LogRecord>> {
        self.fetch_incoming_iter(v).collect()
    }

    /// Stream every record in append order (sealed pages first, then the
    /// tail), through the cache, without materialising a `Vec`.
    pub fn scan_iter(&mut self) -> PagedScanIter<'_> {
        PagedScanIter {
            index: &self.index,
            store: &mut self.store,
            cur: None,
            next_ordinal: 0,
        }
    }

    /// Convenience collecting variant of [`PagedEdgeLog::scan_iter`].
    pub fn scan_all(&mut self) -> io::Result<Vec<LogRecord>> {
        self.scan_iter().collect()
    }

    /// Delete the backing page file. The log must not be used afterwards.
    pub fn destroy(self) -> io::Result<()> {
        self.store.pager.destroy()
    }
}

/// Decode state within one pinned page (or the tail).
#[derive(Debug)]
struct PageCursor {
    /// Index into `LogIndex::page_ids`; `usize::MAX` marks the tail.
    page_idx: usize,
    /// Pinned cache frame (`None` for the tail, which lives off-cache).
    frame: Option<usize>,
    /// Ordinal of the page's first record.
    base_ordinal: u64,
    /// Records already decoded from this page.
    decoded: u64,
    offset: usize,
    prev_id: i64,
    prev_ts: i64,
}

const TAIL_PAGE: usize = usize::MAX;

/// Shared cursor logic: position on the page containing `ordinal` and
/// decode forward to it. Ordinals must be requested in increasing order —
/// both posting lists and scans are ascending by construction.
fn read_ordinal(
    index: &LogIndex,
    store: &mut PageStore,
    cur: &mut Option<PageCursor>,
    ordinal: u64,
) -> io::Result<LogRecord> {
    // Which page holds this ordinal?
    let (page_idx, base_ordinal) = if ordinal >= store.tail_first_ordinal {
        (TAIL_PAGE, store.tail_first_ordinal)
    } else {
        let i = index.page_first_ordinal.partition_point(|&f| f <= ordinal) - 1;
        (i, index.page_first_ordinal[i])
    };
    // (Re)position the cursor. A cursor already past the target within the
    // same page cannot happen: callers request strictly increasing ordinals.
    let reposition = match cur {
        Some(c) => c.page_idx != page_idx,
        None => true,
    };
    if reposition {
        if let Some(old) = cur.take() {
            if let Some(frame) = old.frame {
                store.cache.unpin(frame);
            }
        }
        let frame = if page_idx == TAIL_PAGE {
            None
        } else {
            Some(
                store
                    .cache
                    .pin(&mut store.pager, index.page_ids[page_idx])?,
            )
        };
        *cur = Some(PageCursor {
            page_idx,
            frame,
            base_ordinal,
            decoded: 0,
            offset: 0,
            prev_id: 0,
            prev_ts: 0,
        });
    }
    let c = cur.as_mut().expect("cursor was just installed");
    debug_assert!(ordinal >= c.base_ordinal + c.decoded, "ordinals go forward");
    let mut record = None;
    while c.base_ordinal + c.decoded <= ordinal {
        let page = match c.frame {
            Some(frame) => store.cache.page(frame),
            None => &store.tail,
        };
        let rec = decode_record(
            page.payload_slice(),
            &mut c.offset,
            &mut c.prev_id,
            &mut c.prev_ts,
        )?;
        c.decoded += 1;
        record = Some(rec);
    }
    store.records_read += 1;
    Ok(record.expect("the loop ran at least once"))
}

/// Streaming per-vertex fetch over a [`PagedEdgeLog`] (see
/// [`PagedEdgeLog::fetch_outgoing_iter`]). Pins one page at a time; the pin
/// is released when the iterator moves to another page or is dropped.
#[derive(Debug)]
pub struct PagedFetchIter<'a> {
    posting: Option<PostingCursor<'a>>,
    index: &'a LogIndex,
    store: &'a mut PageStore,
    cur: Option<PageCursor>,
}

impl Iterator for PagedFetchIter<'_> {
    type Item = io::Result<LogRecord>;

    fn next(&mut self) -> Option<io::Result<LogRecord>> {
        let ordinal = self.posting.as_mut()?.next()?;
        Some(read_ordinal(self.index, self.store, &mut self.cur, ordinal))
    }
}

impl Drop for PagedFetchIter<'_> {
    fn drop(&mut self) {
        if let Some(cur) = self.cur.take() {
            if let Some(frame) = cur.frame {
                self.store.cache.unpin(frame);
            }
        }
    }
}

/// Streaming full scan in append order (see [`PagedEdgeLog::scan_iter`]).
#[derive(Debug)]
pub struct PagedScanIter<'a> {
    index: &'a LogIndex,
    store: &'a mut PageStore,
    cur: Option<PageCursor>,
    next_ordinal: u64,
}

impl Iterator for PagedScanIter<'_> {
    type Item = io::Result<LogRecord>;

    fn next(&mut self) -> Option<io::Result<LogRecord>> {
        if self.next_ordinal >= self.store.next_ordinal {
            return None;
        }
        let ordinal = self.next_ordinal;
        self.next_ordinal += 1;
        Some(read_ordinal(self.index, self.store, &mut self.cur, ordinal))
    }
}

impl Drop for PagedScanIter<'_> {
    fn drop(&mut self) {
        if let Some(cur) = self.cur.take() {
            if let Some(frame) = cur.frame {
                self.store.cache.unpin(frame);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::page::MIN_PAGE_SIZE;

    fn rec(id: u32, s: u32, d: u32, l: u16, ts: u64, row: u64) -> LogRecord {
        LogRecord {
            edge: Edge {
                id: EdgeId(id),
                src: VertexId(s),
                dst: VertexId(d),
                label: EdgeLabel(l),
                timestamp: Timestamp(ts),
            },
            debi_row: row,
        }
    }

    #[test]
    fn append_scan_fetch_roundtrip() {
        let mut log = PagedEdgeLog::create_temp(MIN_PAGE_SIZE, 4, "roundtrip").unwrap();
        let records: Vec<LogRecord> = (0..10_000u32)
            .map(|i| {
                rec(
                    i,
                    i % 97,
                    (i * 7) % 89,
                    (i % 5) as u16,
                    1000 + i as u64,
                    (i % 64) as u64,
                )
            })
            .collect();
        log.append_batch(&records).unwrap();
        assert_eq!(log.len(), 10_000);
        let back = log.scan_all().unwrap();
        assert_eq!(back, records);
        // Per-vertex fetch matches a filter of the append order.
        let got = log.fetch_outgoing(VertexId(13)).unwrap();
        let want: Vec<LogRecord> = records
            .iter()
            .copied()
            .filter(|r| r.edge.src == VertexId(13))
            .collect();
        assert_eq!(got, want);
        let got = log.fetch_incoming(VertexId(21)).unwrap();
        let want: Vec<LogRecord> = records
            .iter()
            .copied()
            .filter(|r| r.edge.dst == VertexId(21))
            .collect();
        assert_eq!(got, want);
        // Dense sequential ids must compress well below the raw encoding.
        let stats = log.stats();
        assert!(
            stats.compression_ratio() > 2.0,
            "{}",
            stats.compression_ratio()
        );
        assert!(stats.pages_sealed > 0);
        log.destroy().unwrap();
    }

    #[test]
    fn resident_pages_stay_within_the_cache_budget() {
        let mut log = PagedEdgeLog::create_temp(MIN_PAGE_SIZE, 2, "budget").unwrap();
        let records: Vec<LogRecord> = (0..20_000u32)
            .map(|i| rec(i, i % 11, i % 7, 0, i as u64, 0))
            .collect();
        log.append_batch(&records).unwrap();
        assert!(
            log.stats().pages_sealed > 10,
            "needs many pages to be a real test"
        );
        assert!(log.resident_pages() <= 2);
        let total: usize = (0..11u32)
            .map(|v| log.fetch_outgoing(VertexId(v)).unwrap().len())
            .sum();
        assert_eq!(total, 20_000);
        assert!(log.resident_pages() <= 2);
        let stats = log.stats();
        assert!(stats.cache.evictions > 0);
        assert!(
            stats.cache.write_backs > 0,
            "evicting dirty pages writes them back"
        );
        log.destroy().unwrap();
    }

    #[test]
    fn flush_persists_and_survives_reread() {
        let mut log = PagedEdgeLog::create_temp(MIN_PAGE_SIZE, 2, "flush").unwrap();
        let records: Vec<LogRecord> = (0..5_000u32)
            .map(|i| rec(i, i % 3, i % 5, 1, i as u64, 7))
            .collect();
        log.append_batch(&records).unwrap();
        log.flush().unwrap();
        assert_eq!(log.scan_all().unwrap(), records);
        let stats = log.stats();
        assert!(stats.bytes_on_disk > 0);
        log.destroy().unwrap();
    }

    #[test]
    fn empty_log_and_missing_vertex() {
        let mut log = PagedEdgeLog::create_temp(MIN_PAGE_SIZE, 2, "empty").unwrap();
        assert!(log.is_empty());
        assert!(log.scan_all().unwrap().is_empty());
        assert!(log.fetch_outgoing(VertexId(42)).unwrap().is_empty());
        log.append_batch(&[]).unwrap();
        assert!(log.is_empty());
        log.destroy().unwrap();
    }
}
