//! The page manager: fixed-size pages in one backing file.
//!
//! [`PageManager`] owns the file, hands out page ids (recycling freed ones),
//! and performs the positioned page-granular I/O. Pages are stamped with a
//! monotonically increasing **generation** on every write-out, so a reread
//! page can be sanity-checked against the manager's issued-generation bound
//! — a page "from the future" means the file is not the one this manager
//! wrote. All integrity checks of the page image itself live in
//! [`Page::from_bytes`].

use crate::storage::page::{Page, MAX_PAGE_SIZE, MIN_PAGE_SIZE};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// I/O statistics of one page manager.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PagerStats {
    /// Pages written out (each a full `page_size` positioned write).
    pub pages_written: u64,
    /// Pages read back in.
    pub pages_read: u64,
    /// Pages currently allocated (live slots, free-listed ones excluded).
    pub pages_allocated: u64,
}

/// Fixed-size-page file store with id recycling and generation stamping.
#[derive(Debug)]
pub struct PageManager {
    path: PathBuf,
    file: File,
    page_size: usize,
    next_page: u32,
    free: Vec<u32>,
    generation: u64,
    stats: PagerStats,
}

impl PageManager {
    /// Create (or truncate) a page file at `path`.
    ///
    /// # Errors
    /// [`io::ErrorKind::InvalidInput`] when `page_size` is not a power of
    /// two in `4 KiB ..= 64 KiB`; otherwise any file-creation error.
    pub fn create(path: impl AsRef<Path>, page_size: usize) -> io::Result<Self> {
        if !(MIN_PAGE_SIZE..=MAX_PAGE_SIZE).contains(&page_size) || !page_size.is_power_of_two() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "page size must be a power of two in {MIN_PAGE_SIZE}..={MAX_PAGE_SIZE}, got {page_size}"
                ),
            ));
        }
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(PageManager {
            path,
            file,
            page_size,
            next_page: 0,
            free: Vec::new(),
            generation: 0,
            stats: PagerStats::default(),
        })
    }

    /// Create a page file in a fresh temporary location.
    pub fn create_temp(page_size: usize, tag: &str) -> io::Result<Self> {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "mnemonic-pages-{}-{}-{}.bin",
            tag,
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        Self::create(path, page_size)
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The fixed page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Current I/O statistics.
    pub fn stats(&self) -> PagerStats {
        self.stats
    }

    /// Bytes the backing file occupies for the currently allocated id range.
    pub fn bytes_on_disk(&self) -> u64 {
        u64::from(self.next_page) * self.page_size as u64
    }

    /// Allocate a page id, reusing freed slots first.
    pub fn alloc(&mut self) -> u32 {
        self.stats.pages_allocated += 1;
        if let Some(id) = self.free.pop() {
            id
        } else {
            let id = self.next_page;
            self.next_page += 1;
            id
        }
    }

    /// Return a page id to the free list for reuse. The on-disk bytes keep
    /// their stale (old-generation) content until the slot is rewritten.
    pub fn release(&mut self, id: u32) {
        debug_assert!(
            id < self.next_page,
            "released page {id} was never allocated"
        );
        self.stats.pages_allocated = self.stats.pages_allocated.saturating_sub(1);
        self.free.push(id);
    }

    /// Write `page` to its slot, stamping it with the next generation.
    pub fn write_page(&mut self, page: &mut Page) -> io::Result<()> {
        self.generation += 1;
        page.stamp(self.generation);
        let bytes = page.to_bytes();
        self.file.seek(SeekFrom::Start(
            u64::from(page.id()) * self.page_size as u64,
        ))?;
        self.file.write_all(&bytes)?;
        self.stats.pages_written += 1;
        Ok(())
    }

    /// Read and verify the page in slot `id`.
    ///
    /// # Errors
    /// [`io::ErrorKind::InvalidData`] on any page-format violation (torn
    /// write, wrong slot, generation from the future); other kinds for plain
    /// I/O failures.
    pub fn read_page(&mut self, id: u32) -> io::Result<Page> {
        let mut raw = vec![0u8; self.page_size];
        self.file
            .seek(SeekFrom::Start(u64::from(id) * self.page_size as u64))?;
        self.file.read_exact(&mut raw)?;
        let page = Page::from_bytes(&raw, self.page_size, id)?;
        if page.generation() > self.generation {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "page {id} carries generation {} but only {} were issued",
                    page.generation(),
                    self.generation
                ),
            ));
        }
        self.stats.pages_read += 1;
        Ok(page)
    }

    /// Delete the backing file. The manager must not be used afterwards.
    pub fn destroy(self) -> io::Result<()> {
        let path = self.path.clone();
        drop(self);
        std::fs::remove_file(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_write_read_roundtrip() {
        let mut pager = PageManager::create_temp(MIN_PAGE_SIZE, "roundtrip").unwrap();
        let a = pager.alloc();
        let b = pager.alloc();
        assert_ne!(a, b);
        let mut page_a = Page::new(MIN_PAGE_SIZE, a);
        page_a.push_record(b"first page");
        let mut page_b = Page::new(MIN_PAGE_SIZE, b);
        page_b.push_record(b"second page");
        pager.write_page(&mut page_a).unwrap();
        pager.write_page(&mut page_b).unwrap();
        assert_eq!(page_a.generation(), 1);
        assert_eq!(page_b.generation(), 2);
        assert_eq!(pager.read_page(a).unwrap(), page_a);
        assert_eq!(pager.read_page(b).unwrap(), page_b);
        assert_eq!(pager.stats().pages_written, 2);
        assert_eq!(pager.stats().pages_read, 2);
        pager.destroy().unwrap();
    }

    #[test]
    fn freed_ids_are_recycled() {
        let mut pager = PageManager::create_temp(MIN_PAGE_SIZE, "recycle").unwrap();
        let a = pager.alloc();
        let _b = pager.alloc();
        pager.release(a);
        assert_eq!(pager.alloc(), a);
        assert_eq!(pager.stats().pages_allocated, 2);
        pager.destroy().unwrap();
    }

    #[test]
    fn invalid_page_sizes_are_rejected() {
        for bad in [
            0usize,
            512,
            MIN_PAGE_SIZE - 1,
            MIN_PAGE_SIZE + 1,
            MAX_PAGE_SIZE * 2,
        ] {
            assert!(PageManager::create_temp(bad, "bad").is_err(), "{bad}");
        }
        for good in [MIN_PAGE_SIZE, 8 * 1024, 16 * 1024, MAX_PAGE_SIZE] {
            PageManager::create_temp(good, "good")
                .unwrap()
                .destroy()
                .unwrap();
        }
    }

    #[test]
    fn reading_a_never_written_page_is_a_torn_write() {
        let mut pager = PageManager::create_temp(MIN_PAGE_SIZE, "torn").unwrap();
        let a = pager.alloc();
        let b = pager.alloc();
        let mut page_b = Page::new(MIN_PAGE_SIZE, b);
        page_b.push_record(b"only b was written");
        pager.write_page(&mut page_b).unwrap();
        // Slot `a` exists in the file (zero padding from writing b at a
        // higher offset? no — a is the lower slot and was never written, so
        // the read either fails short or parses zeroes; both are errors).
        let err = pager.read_page(a).unwrap_err();
        assert!(
            err.kind() == io::ErrorKind::InvalidData || err.kind() == io::ErrorKind::UnexpectedEof,
            "{err}"
        );
        pager.destroy().unwrap();
    }
}
