//! The page manager: fixed-size pages in one backing file.
//!
//! [`PageManager`] owns the file, hands out page ids (recycling freed ones),
//! and performs the positioned page-granular I/O. Pages are stamped with a
//! monotonically increasing **generation** on every write-out, so a reread
//! page can be sanity-checked against the manager's issued-generation bound
//! — a page "from the future" means the file is not the one this manager
//! wrote. All integrity checks of the page image itself live in
//! [`Page::from_bytes`].
//!
//! # Fault handling
//!
//! Every read and write runs under a bounded retry loop: transient error
//! kinds ([`io::ErrorKind::Interrupted`], `WouldBlock`, `TimedOut`) are
//! retried up to [`IO_RETRY_ATTEMPTS`] times with exponential backoff, and
//! counted in [`PagerStats::io_retries`] — once per retried attempt, never
//! per logical operation twice. A failure that exhausts the retries, or any
//! non-transient kind, increments [`PagerStats::io_errors`] **exactly once**
//! and surfaces to the caller. A seeded [`FaultPlan`] can inject
//! deterministic faults into this path for recovery testing; see
//! [`crate::storage::fault`].

use crate::storage::fault::{FaultPlan, FaultState, WriteFault};
use crate::storage::page::{Page, MAX_PAGE_SIZE, MIN_PAGE_SIZE};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Maximum attempts per logical page operation (first try + retries).
pub const IO_RETRY_ATTEMPTS: u32 = 3;

/// Backoff before the first retry; doubles per subsequent retry.
const IO_RETRY_BACKOFF: Duration = Duration::from_micros(50);

/// Whether an I/O error kind is worth retrying.
fn is_transient(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// I/O statistics of one page manager.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PagerStats {
    /// Pages written out (each a full `page_size` positioned write).
    pub pages_written: u64,
    /// Pages read back in.
    pub pages_read: u64,
    /// Pages currently allocated (live slots, free-listed ones excluded).
    pub pages_allocated: u64,
    /// Transient I/O failures that were retried (and eventually succeeded
    /// or gave up); one increment per failed *attempt*.
    pub io_retries: u64,
    /// I/O operations that failed permanently and surfaced to the caller;
    /// exactly one increment per failed logical operation, regardless of
    /// how many retries it burned.
    pub io_errors: u64,
}

/// Fixed-size-page file store with id recycling and generation stamping.
#[derive(Debug)]
pub struct PageManager {
    path: PathBuf,
    file: File,
    page_size: usize,
    next_page: u32,
    free: Vec<u32>,
    generation: u64,
    stats: PagerStats,
    fault: FaultState,
}

fn validate_page_size(page_size: usize) -> io::Result<()> {
    if !(MIN_PAGE_SIZE..=MAX_PAGE_SIZE).contains(&page_size) || !page_size.is_power_of_two() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "page size must be a power of two in {MIN_PAGE_SIZE}..={MAX_PAGE_SIZE}, got {page_size}"
            ),
        ));
    }
    Ok(())
}

impl PageManager {
    /// Create (or truncate) a page file at `path`.
    ///
    /// # Errors
    /// [`io::ErrorKind::InvalidInput`] when `page_size` is not a power of
    /// two in `4 KiB ..= 64 KiB`; otherwise any file-creation error.
    pub fn create(path: impl AsRef<Path>, page_size: usize) -> io::Result<Self> {
        validate_page_size(page_size)?;
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(PageManager {
            path,
            file,
            page_size,
            next_page: 0,
            free: Vec::new(),
            generation: 0,
            stats: PagerStats::default(),
            fault: FaultState::new(FaultPlan::default()),
        })
    }

    /// Create a page file in a fresh temporary location.
    pub fn create_temp(page_size: usize, tag: &str) -> io::Result<Self> {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "mnemonic-pages-{}-{}-{}.bin",
            tag,
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        Self::create(path, page_size)
    }

    /// Open an **existing** page file for recovery, without truncating it.
    ///
    /// The manager starts with generation 0 (the recovery scan learns the
    /// real bound from surviving pages via `assume_generation`) and
    /// addresses `ceil(file_len / page_size)` slots, so a torn final slot
    /// is readable — and fails validation — rather than silently out of
    /// range.
    ///
    /// # Errors
    /// [`io::ErrorKind::InvalidInput`] for a bad `page_size`; otherwise any
    /// file-open error (notably [`io::ErrorKind::NotFound`]).
    pub fn open(path: impl AsRef<Path>, page_size: usize) -> io::Result<Self> {
        validate_page_size(page_size)?;
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let len = file.metadata()?.len();
        let slots = len.div_ceil(page_size as u64);
        let next_page = u32::try_from(slots).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("page file holds {slots} slots, beyond the u32 id space"),
            )
        })?;
        Ok(PageManager {
            path,
            file,
            page_size,
            next_page,
            free: Vec::new(),
            generation: 0,
            stats: PagerStats {
                pages_allocated: u64::from(next_page),
                ..PagerStats::default()
            },
            fault: FaultState::new(FaultPlan::default()),
        })
    }

    /// Install a deterministic fault-injection plan (see
    /// [`crate::storage::fault`]). Resets the plan's operation counters.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = FaultState::new(plan);
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The fixed page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Current I/O statistics.
    pub fn stats(&self) -> PagerStats {
        self.stats
    }

    /// Highest generation this manager has issued (or assumed during
    /// recovery); every validly written page carries a generation at or
    /// below this bound.
    pub fn issued_generation(&self) -> u64 {
        self.generation
    }

    /// Bytes the backing file occupies for the currently allocated id range.
    pub fn bytes_on_disk(&self) -> u64 {
        u64::from(self.next_page) * self.page_size as u64
    }

    /// Actual length of the backing file in bytes (what a crashed writer
    /// really left behind; can disagree with [`PageManager::bytes_on_disk`]
    /// after a torn final write).
    pub fn file_len(&self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    /// Number of addressable page slots.
    pub fn slot_count(&self) -> u32 {
        self.next_page
    }

    /// Allocate a page id, reusing freed slots first.
    pub fn alloc(&mut self) -> u32 {
        self.stats.pages_allocated += 1;
        if let Some(id) = self.free.pop() {
            id
        } else {
            let id = self.next_page;
            self.next_page += 1;
            id
        }
    }

    /// Return a page id to the free list for reuse. The on-disk bytes keep
    /// their stale (old-generation) content until the slot is rewritten.
    pub fn release(&mut self, id: u32) {
        debug_assert!(
            id < self.next_page,
            "released page {id} was never allocated"
        );
        self.stats.pages_allocated = self.stats.pages_allocated.saturating_sub(1);
        self.free.push(id);
    }

    /// Run one logical I/O operation under the bounded transient-retry
    /// loop. `transient_fault` injects one seeded transient failure on the
    /// first attempt. Counts retries and the final verdict exactly once.
    fn with_retry<T>(
        stats: &mut PagerStats,
        transient_fault: bool,
        mut op: impl FnMut() -> io::Result<T>,
    ) -> io::Result<T> {
        let mut backoff = IO_RETRY_BACKOFF;
        for attempt in 0..IO_RETRY_ATTEMPTS {
            let result = if transient_fault && attempt == 0 {
                Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "injected transient I/O fault",
                ))
            } else {
                op()
            };
            match result {
                Ok(v) => return Ok(v),
                Err(e) if is_transient(e.kind()) && attempt + 1 < IO_RETRY_ATTEMPTS => {
                    stats.io_retries += 1;
                    std::thread::sleep(backoff);
                    backoff *= 2;
                }
                Err(e) => {
                    stats.io_errors += 1;
                    return Err(e);
                }
            }
        }
        unreachable!("the retry loop always returns")
    }

    /// Write `page` to its slot, stamping it with the next generation.
    ///
    /// # Errors
    /// A transient failure that survives [`IO_RETRY_ATTEMPTS`] attempts, or
    /// any permanent I/O failure (counted once in
    /// [`PagerStats::io_errors`]).
    pub fn write_page(&mut self, page: &mut Page) -> io::Result<()> {
        self.generation += 1;
        page.stamp(self.generation);
        let mut bytes = page.to_bytes();
        let decision = self.fault.next_write(self.page_size);
        let transient = self.fault.next_op_transient();
        // Decide the persisted image once, outside the retry loop, so a
        // retried attempt rewrites the same (possibly corrupted) bytes.
        let persist_len = match decision {
            WriteFault::FailPermanent => {
                self.stats.io_errors += 1;
                return Err(io::Error::other(format!(
                    "injected permanent write failure on page {}",
                    page.id()
                )));
            }
            WriteFault::Torn { prefix } => prefix,
            WriteFault::BitFlip { bit } => {
                bytes[bit / 8] ^= 1 << (bit % 8);
                bytes.len()
            }
            WriteFault::None => bytes.len(),
        };
        let offset = u64::from(page.id()) * self.page_size as u64;
        let file = &mut self.file;
        Self::with_retry(&mut self.stats, transient, || {
            file.seek(SeekFrom::Start(offset))?;
            file.write_all(&bytes[..persist_len])
        })?;
        self.stats.pages_written += 1;
        Ok(())
    }

    /// Read and verify the page in slot `id`.
    ///
    /// # Errors
    /// [`io::ErrorKind::InvalidData`] on any page-format violation (torn
    /// write, wrong slot, generation from the future); other kinds for plain
    /// I/O failures (counted once in [`PagerStats::io_errors`]).
    pub fn read_page(&mut self, id: u32) -> io::Result<Page> {
        let page = self.read_page_unbounded(id)?;
        if page.generation() > self.generation {
            self.stats.io_errors += 1;
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "page {id} carries generation {} but only {} were issued",
                    page.generation(),
                    self.generation
                ),
            ));
        }
        Ok(page)
    }

    /// Read and verify slot `id` **without** the issued-generation bound.
    ///
    /// Recovery opens a file whose writer is gone, so no generation bound
    /// exists yet; the page image itself is still fully validated (magic,
    /// slot id, checksum, record tiling).
    pub(crate) fn read_page_for_recovery(&mut self, id: u32) -> io::Result<Page> {
        self.read_page_unbounded(id)
    }

    fn read_page_unbounded(&mut self, id: u32) -> io::Result<Page> {
        let transient = self.fault.next_op_transient();
        let offset = u64::from(id) * self.page_size as u64;
        let page_size = self.page_size;
        let file = &mut self.file;
        let mut raw = vec![0u8; page_size];
        Self::with_retry(&mut self.stats, transient, || {
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(&mut raw)
        })?;
        // A page that transfers but fails validation is a failed read too:
        // count it once, like any other surfaced failure.
        let page = Page::from_bytes(&raw, page_size, id).inspect_err(|_| {
            self.stats.io_errors += 1;
        })?;
        self.stats.pages_read += 1;
        Ok(page)
    }

    /// Raise the issued-generation bound to at least `generation` (recovery
    /// learned it from a surviving page or a checkpoint).
    pub(crate) fn assume_generation(&mut self, generation: u64) {
        self.generation = self.generation.max(generation);
    }

    /// Physically truncate the file to its first `pages` slots, dropping
    /// everything behind the recovered prefix.
    pub(crate) fn truncate_to(&mut self, pages: u32) -> io::Result<()> {
        self.file
            .set_len(u64::from(pages) * self.page_size as u64)?;
        self.next_page = pages;
        self.free.retain(|&id| id < pages);
        self.stats.pages_allocated = u64::from(pages).saturating_sub(self.free.len() as u64);
        Ok(())
    }

    /// Delete the backing file. The manager must not be used afterwards.
    pub fn destroy(self) -> io::Result<()> {
        let path = self.path.clone();
        drop(self);
        std::fs::remove_file(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_write_read_roundtrip() {
        let mut pager = PageManager::create_temp(MIN_PAGE_SIZE, "roundtrip").unwrap();
        let a = pager.alloc();
        let b = pager.alloc();
        assert_ne!(a, b);
        let mut page_a = Page::new(MIN_PAGE_SIZE, a);
        page_a.push_record(b"first page");
        let mut page_b = Page::new(MIN_PAGE_SIZE, b);
        page_b.push_record(b"second page");
        pager.write_page(&mut page_a).unwrap();
        pager.write_page(&mut page_b).unwrap();
        assert_eq!(page_a.generation(), 1);
        assert_eq!(page_b.generation(), 2);
        assert_eq!(pager.read_page(a).unwrap(), page_a);
        assert_eq!(pager.read_page(b).unwrap(), page_b);
        assert_eq!(pager.stats().pages_written, 2);
        assert_eq!(pager.stats().pages_read, 2);
        assert_eq!(pager.stats().io_retries, 0);
        assert_eq!(pager.stats().io_errors, 0);
        pager.destroy().unwrap();
    }

    #[test]
    fn freed_ids_are_recycled() {
        let mut pager = PageManager::create_temp(MIN_PAGE_SIZE, "recycle").unwrap();
        let a = pager.alloc();
        let _b = pager.alloc();
        pager.release(a);
        assert_eq!(pager.alloc(), a);
        assert_eq!(pager.stats().pages_allocated, 2);
        pager.destroy().unwrap();
    }

    #[test]
    fn invalid_page_sizes_are_rejected() {
        for bad in [
            0usize,
            512,
            MIN_PAGE_SIZE - 1,
            MIN_PAGE_SIZE + 1,
            MAX_PAGE_SIZE * 2,
        ] {
            assert!(PageManager::create_temp(bad, "bad").is_err(), "{bad}");
        }
        for good in [MIN_PAGE_SIZE, 8 * 1024, 16 * 1024, MAX_PAGE_SIZE] {
            PageManager::create_temp(good, "good")
                .unwrap()
                .destroy()
                .unwrap();
        }
    }

    #[test]
    fn reading_a_never_written_page_is_a_torn_write() {
        let mut pager = PageManager::create_temp(MIN_PAGE_SIZE, "torn").unwrap();
        let a = pager.alloc();
        let b = pager.alloc();
        let mut page_b = Page::new(MIN_PAGE_SIZE, b);
        page_b.push_record(b"only b was written");
        pager.write_page(&mut page_b).unwrap();
        // Slot `a` exists in the file (zero padding from writing b at a
        // higher offset? no — a is the lower slot and was never written, so
        // the read either fails short or parses zeroes; both are errors).
        let err = pager.read_page(a).unwrap_err();
        assert!(
            err.kind() == io::ErrorKind::InvalidData || err.kind() == io::ErrorKind::UnexpectedEof,
            "{err}"
        );
        pager.destroy().unwrap();
    }

    #[test]
    fn transient_faults_are_retried_and_counted_once_per_attempt() {
        let mut pager = PageManager::create_temp(MIN_PAGE_SIZE, "transient").unwrap();
        pager.set_fault_plan(FaultPlan {
            transient_every: 1, // every operation fails once, retry succeeds
            ..FaultPlan::default()
        });
        let a = pager.alloc();
        let mut page = Page::new(MIN_PAGE_SIZE, a);
        page.push_record(b"survives a transient fault");
        pager.write_page(&mut page).unwrap();
        assert_eq!(pager.read_page(a).unwrap(), page);
        let stats = pager.stats();
        assert_eq!(stats.io_retries, 2, "one retried attempt per operation");
        assert_eq!(stats.io_errors, 0, "retried transients are not errors");
        assert_eq!(stats.pages_written, 1);
        assert_eq!(stats.pages_read, 1);
        pager.destroy().unwrap();
    }

    #[test]
    fn permanent_write_failure_is_counted_exactly_once() {
        let mut pager = PageManager::create_temp(MIN_PAGE_SIZE, "permfail").unwrap();
        pager.set_fault_plan(FaultPlan {
            fail_write: 1,
            ..FaultPlan::default()
        });
        let a = pager.alloc();
        let mut page = Page::new(MIN_PAGE_SIZE, a);
        page.push_record(b"never lands");
        let err = pager.write_page(&mut page).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        assert_eq!(pager.stats().io_errors, 1);
        assert_eq!(pager.stats().io_retries, 0, "permanent errors skip retry");
        assert_eq!(pager.stats().pages_written, 0);
        // The next write succeeds: the fault fired at its ordinal only.
        pager.write_page(&mut page).unwrap();
        assert_eq!(pager.stats().io_errors, 1);
        pager.destroy().unwrap();
    }

    #[test]
    fn torn_write_reports_success_but_fails_validation_on_readback() {
        let mut pager = PageManager::create_temp(MIN_PAGE_SIZE, "tornwrite").unwrap();
        pager.set_fault_plan(FaultPlan {
            seed: 99,
            torn_write: 1,
            ..FaultPlan::default()
        });
        let a = pager.alloc();
        let mut page = Page::new(MIN_PAGE_SIZE, a);
        page.push_record(b"torn on the way down");
        pager.write_page(&mut page).unwrap(); // the tear is silent
        let err = pager.read_page(a).unwrap_err();
        assert!(
            err.kind() == io::ErrorKind::InvalidData || err.kind() == io::ErrorKind::UnexpectedEof,
            "{err}"
        );
        pager.destroy().unwrap();
    }

    #[test]
    fn bit_flip_reports_success_but_fails_checksum_on_readback() {
        let mut pager = PageManager::create_temp(MIN_PAGE_SIZE, "bitflip").unwrap();
        pager.set_fault_plan(FaultPlan {
            seed: 7,
            bit_flip_write: 1,
            ..FaultPlan::default()
        });
        let a = pager.alloc();
        let mut page = Page::new(MIN_PAGE_SIZE, a);
        page.push_record(b"one bit will lie");
        pager.write_page(&mut page).unwrap(); // the flip is silent
        match pager.read_page(a) {
            // Overwhelmingly likely: the checksum catches the flip.
            Err(err) => assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}"),
            // A flip in the dead padding beyond `used` is checksum-invisible
            // by design; the record bytes themselves must then be intact.
            Ok(read_back) => assert_eq!(read_back.records().count(), 1),
        }
        pager.destroy().unwrap();
    }

    #[test]
    fn open_addresses_partial_trailing_slots() {
        let mut pager = PageManager::create_temp(MIN_PAGE_SIZE, "reopen").unwrap();
        let a = pager.alloc();
        let mut page = Page::new(MIN_PAGE_SIZE, a);
        page.push_record(b"persisted before the crash");
        pager.write_page(&mut page).unwrap();
        let path = pager.path().to_path_buf();
        // Simulate a crash mid-write of a second page: append half a page.
        drop(pager);
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&vec![0xAB; MIN_PAGE_SIZE / 2]).unwrap();
        }
        let mut pager = PageManager::open(&path, MIN_PAGE_SIZE).unwrap();
        assert_eq!(pager.slot_count(), 2, "the torn half-slot is addressable");
        pager.assume_generation(1);
        assert_eq!(pager.read_page(0).unwrap(), page);
        assert!(
            pager.read_page(1).is_err(),
            "the torn slot fails validation"
        );
        pager.truncate_to(1).unwrap();
        assert_eq!(pager.file_len().unwrap(), MIN_PAGE_SIZE as u64);
        assert_eq!(pager.slot_count(), 1);
        pager.destroy().unwrap();
    }
}
