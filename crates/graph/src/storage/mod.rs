//! Paged, cache-bounded storage tier (PR 8).
//!
//! This subsystem gives the spill path (Section IV-A, "External memory
//! support") a real block layout instead of the fixed-width append file:
//!
//! * [`codec`] — hand-rolled varint/zigzag/length-prefix primitives and
//!   delta-compressed [`PostingList`]s (the serde shim has no-op derives, so
//!   every persisted byte goes through here),
//! * [`page`] — the fixed-size page format with magic, generation stamp and
//!   FNV-1a checksum for torn-write detection,
//! * [`pager`] — the [`PageManager`] that owns the page file and performs
//!   page-granular positioned I/O,
//! * [`cache`] — the second-chance [`PageCache`] with pin/unpin and
//!   dirty-page write-back, which bounds resident memory to a fixed page
//!   budget,
//! * [`paged_log`] — the [`PagedEdgeLog`]: delta-varint-compressed records
//!   in pages, per-vertex posting lists, streaming fetch/scan iterators
//!   that never materialise intermediate `Vec`s, and — since PR 10 — the
//!   [`PagedEdgeLog::recover`] crash-recovery scan plus snapshot
//!   checkpoints,
//! * [`fault`] — the seeded, deterministic [`FaultPlan`] fault-injection
//!   hook threaded through the pager's I/O for recovery testing.
//!
//! The tier is **opt-in**: [`StorageConfig::default`] keeps everything
//! in memory exactly as before, [`StorageConfig::paged`] routes window
//! spills through the page cache.

pub mod cache;
pub mod codec;
pub mod fault;
pub mod page;
pub mod paged_log;
pub mod pager;

pub use cache::{PageCache, PageCacheStats};
pub use codec::{PostingCursor, PostingList};
pub use fault::FaultPlan;
pub use page::{BlockIter, Page, MAX_PAGE_SIZE, MIN_PAGE_SIZE, PAGE_HEADER_BYTES, PAGE_MAGIC};
pub use paged_log::{PagedEdgeLog, PagedFetchIter, PagedLogStats, PagedScanIter, RecoveryReport};
pub use pager::{PageManager, PagerStats, IO_RETRY_ATTEMPTS};

/// Which backend the spill tier writes to.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum StorageBackend {
    /// The fixed-width append-only [`crate::edge_log::EdgeLog`] (seed
    /// behaviour).
    #[default]
    InMemory,
    /// The paged, delta-varint-compressed [`PagedEdgeLog`] behind the
    /// [`PageCache`].
    Paged,
}

/// Configuration of the storage tier.
///
/// The default keeps the seed's in-memory/flat-log behaviour; call
/// [`StorageConfig::paged`] to bound resident memory with the page cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageConfig {
    /// Backend the spill tier writes to.
    pub backend: StorageBackend,
    /// Page size in bytes: a power of two in `4 KiB ..= 64 KiB`.
    pub page_size: usize,
    /// Resident-page budget of the cache (minimum 1).
    pub cache_pages: usize,
    /// Write a snapshot checkpoint (see [`PagedEdgeLog::checkpoint`]) every
    /// time this many *new* pages have been sealed since the last
    /// checkpoint; `0` disables automatic checkpoints. Paged backend only.
    pub checkpoint_pages: usize,
    /// Deterministic fault-injection plan installed on the page I/O path;
    /// the default injects nothing. See [`fault`].
    pub fault: FaultPlan,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            backend: StorageBackend::InMemory,
            page_size: 16 * 1024,
            cache_pages: 64,
            checkpoint_pages: 0,
            fault: FaultPlan::default(),
        }
    }
}

impl StorageConfig {
    /// Paged storage with the default 16 KiB pages and a 64-page cache.
    pub fn paged() -> Self {
        StorageConfig {
            backend: StorageBackend::Paged,
            ..StorageConfig::default()
        }
    }

    /// Override the page size (bytes; validated when the page file opens).
    pub fn page_size(mut self, bytes: usize) -> Self {
        self.page_size = bytes;
        self
    }

    /// Override the resident-page budget.
    pub fn cache_pages(mut self, pages: usize) -> Self {
        self.cache_pages = pages;
        self
    }

    /// Checkpoint automatically every `pages` newly sealed pages
    /// (`0` disables; see [`PagedEdgeLog::checkpoint`]).
    pub fn checkpoint_every(mut self, pages: usize) -> Self {
        self.checkpoint_pages = pages;
        self
    }

    /// Install a deterministic fault-injection plan on the page I/O path
    /// (see [`fault`]). Test/benchmark use; the default injects nothing.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = plan;
        self
    }

    /// Whether this configuration uses the paged backend.
    pub fn is_paged(&self) -> bool {
        self.backend == StorageBackend::Paged
    }

    /// The cache budget in bytes (`page_size * cache_pages`).
    pub fn cache_budget_bytes(&self) -> usize {
        self.page_size * self.cache_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_in_memory() {
        let cfg = StorageConfig::default();
        assert!(!cfg.is_paged());
        assert_eq!(cfg.backend, StorageBackend::InMemory);
    }

    #[test]
    fn paged_builder_chains() {
        let cfg = StorageConfig::paged().page_size(4 * 1024).cache_pages(8);
        assert!(cfg.is_paged());
        assert_eq!(cfg.page_size, 4 * 1024);
        assert_eq!(cfg.cache_pages, 8);
        assert_eq!(cfg.cache_budget_bytes(), 32 * 1024);
    }
}
