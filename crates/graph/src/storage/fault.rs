//! Deterministic fault injection for the page I/O path.
//!
//! A [`FaultPlan`] is a small, seeded schedule of I/O faults that the
//! [`PageManager`](crate::storage::pager::PageManager) consults on every
//! page read and write. It exists so the crash-recovery and degradation
//! machinery can be *proved* against reproducible disk failures instead of
//! hoping for real ones: the same plan against the same write sequence
//! injects the same faults at the same byte offsets, every run.
//!
//! # Determinism contract
//!
//! Fault sites are selected by **operation ordinal**, not by time: writes
//! are numbered 1, 2, 3, … in issue order, and reads/writes together form a
//! second ordinal sequence for transient faults. All randomness (torn-write
//! prefix length, bit-flip position) comes from a xorshift generator seeded
//! with [`FaultPlan::seed`]. Two runs that issue the same page operations in
//! the same order observe byte-identical corruption.
//!
//! # Fault model
//!
//! * **Permanent write failure** ([`FaultPlan::fail_write`]): the Nth page
//!   write returns an error that survives retries. Nothing reaches disk.
//! * **Torn write** ([`FaultPlan::torn_write`]): the Nth page write persists
//!   only a seeded prefix of the page image and then reports *success* —
//!   the crash model, where the kernel acknowledged a write that never
//!   fully hit the platter. Detected later by the page checksum.
//! * **Bit flip** ([`FaultPlan::bit_flip_write`]): the Nth page write
//!   persists with one seeded bit inverted and reports success — silent
//!   media corruption, again caught by the checksum on read-back.
//! * **Transient error** ([`FaultPlan::transient_every`]): every Nth I/O
//!   operation fails once with [`std::io::ErrorKind::Interrupted`]; the
//!   retry succeeds. Exercises the bounded-retry path without data loss.
//!
//! The plan is carried on [`StorageConfig`](crate::storage::StorageConfig)
//! and is **off by default**: a default `FaultPlan` injects nothing and
//! adds only a counter increment per operation.

/// A seeded, deterministic schedule of injected page-I/O faults.
///
/// All ordinals are 1-based; `0` disables that fault. See the
/// [module docs](self) for the exact fault model and the determinism
/// contract.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the xorshift generator that picks torn-write prefix lengths
    /// and bit-flip positions. Equal seeds (with equal operation sequences)
    /// reproduce byte-identical corruption.
    pub seed: u64,
    /// 1-based ordinal of the page write that fails permanently (retries
    /// included); `0` = never.
    pub fail_write: u64,
    /// 1-based ordinal of the page write that persists only a seeded prefix
    /// of the page and reports success (crash/torn-write model); `0` =
    /// never.
    pub torn_write: u64,
    /// 1-based ordinal of the page write that persists with one seeded bit
    /// flipped and reports success (silent corruption); `0` = never.
    pub bit_flip_write: u64,
    /// Inject one transient [`std::io::ErrorKind::Interrupted`] failure on
    /// every Nth I/O operation (reads and writes share the ordinal
    /// sequence); the retry succeeds. `0` = never.
    pub transient_every: u64,
}

impl FaultPlan {
    /// Whether this plan injects nothing (the default).
    pub fn is_noop(&self) -> bool {
        self.fail_write == 0
            && self.torn_write == 0
            && self.bit_flip_write == 0
            && self.transient_every == 0
    }
}

/// What the fault layer decided for one page write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WriteFault {
    /// Write the full page image.
    None,
    /// Return a permanent error; persist nothing.
    FailPermanent,
    /// Persist only the first `prefix` bytes, then report success.
    Torn { prefix: usize },
    /// Flip bit `bit` of the page image, persist it all, report success.
    BitFlip { bit: usize },
}

/// Mutable per-manager fault state: the plan plus operation counters and
/// the seeded generator. Lives inside the `PageManager`.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    writes: u64,
    ops: u64,
    rng: u64,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            writes: 0,
            ops: 0,
            // Never let xorshift start at 0 (its fixed point); fold in an
            // odd constant so seed 0 still produces a usable stream.
            rng: plan.seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Decide the fate of the next page write of `page_size` bytes.
    pub(crate) fn next_write(&mut self, page_size: usize) -> WriteFault {
        if self.plan.is_noop() {
            return WriteFault::None;
        }
        self.writes += 1;
        if self.plan.fail_write == self.writes {
            WriteFault::FailPermanent
        } else if self.plan.torn_write == self.writes {
            // A strict prefix: at least 1 byte short, possibly almost all.
            let prefix = (self.next_u64() as usize) % page_size;
            WriteFault::Torn { prefix }
        } else if self.plan.bit_flip_write == self.writes {
            let bit = (self.next_u64() as usize) % (page_size * 8);
            WriteFault::BitFlip { bit }
        } else {
            WriteFault::None
        }
    }

    /// Whether the next I/O operation should fail once transiently.
    pub(crate) fn next_op_transient(&mut self) -> bool {
        if self.plan.transient_every == 0 {
            return false;
        }
        self.ops += 1;
        self.ops % self.plan.transient_every == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_noop_and_decides_nothing() {
        let mut state = FaultState::new(FaultPlan::default());
        for _ in 0..100 {
            assert_eq!(state.next_write(4096), WriteFault::None);
            assert!(!state.next_op_transient());
        }
    }

    #[test]
    fn write_faults_fire_at_their_ordinal_exactly_once() {
        let plan = FaultPlan {
            seed: 42,
            fail_write: 2,
            torn_write: 4,
            bit_flip_write: 5,
            transient_every: 0,
        };
        let mut state = FaultState::new(plan);
        assert_eq!(state.next_write(4096), WriteFault::None);
        assert_eq!(state.next_write(4096), WriteFault::FailPermanent);
        assert_eq!(state.next_write(4096), WriteFault::None);
        let torn = state.next_write(4096);
        match torn {
            WriteFault::Torn { prefix } => assert!(prefix < 4096),
            other => panic!("expected a torn write, got {other:?}"),
        }
        let flip = state.next_write(4096);
        match flip {
            WriteFault::BitFlip { bit } => assert!(bit < 4096 * 8),
            other => panic!("expected a bit flip, got {other:?}"),
        }
        for _ in 0..32 {
            assert_eq!(state.next_write(4096), WriteFault::None);
        }
    }

    #[test]
    fn equal_seeds_reproduce_identical_decisions() {
        let plan = FaultPlan {
            seed: 7,
            torn_write: 1,
            bit_flip_write: 2,
            ..FaultPlan::default()
        };
        let mut a = FaultState::new(plan);
        let mut b = FaultState::new(plan);
        for _ in 0..4 {
            assert_eq!(a.next_write(8192), b.next_write(8192));
        }
    }

    #[test]
    fn transient_faults_fire_every_nth_op() {
        let plan = FaultPlan {
            transient_every: 3,
            ..FaultPlan::default()
        };
        let mut state = FaultState::new(plan);
        let fired: Vec<bool> = (0..9).map(|_| state.next_op_transient()).collect();
        assert_eq!(
            fired,
            vec![false, false, true, false, false, true, false, false, true]
        );
    }
}
