//! Hand-rolled binary codec for the paged storage tier.
//!
//! The workspace's offline serde shim has no-op derives, so every byte that
//! reaches a page is written and read by the primitives in this module:
//!
//! * **LEB128 varints** for `u32`/`u64` — dense edge/vertex ids (PR 5) make
//!   most values small, so they usually take 1–2 bytes instead of 4–8,
//! * **zigzag** mapping for signed deltas, so consecutive ids/timestamps
//!   encode as tiny varints regardless of direction,
//! * **length-prefixed records** — a varint byte length followed by the
//!   payload, which lets an iterator skip or bound-check a record without
//!   understanding its interior,
//! * **delta-varint posting lists** — strictly increasing `u64` sequences
//!   (record ordinals, neighbour ids) stored as first value + gaps,
//! * a **FNV-1a checksum** used by the page format to detect torn writes.
//!
//! Every decode primitive is bounds-checked and returns `None`/`Err` instead
//! of panicking: the input may be a torn or corrupted page.

/// Append `v` as an LEB128 varint (1–10 bytes).
#[inline]
pub fn write_varint_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Append `v` as an LEB128 varint (1–5 bytes).
#[inline]
pub fn write_varint_u32(buf: &mut Vec<u8>, v: u32) {
    write_varint_u64(buf, v as u64);
}

/// Decode an LEB128 varint starting at `*pos`, advancing `*pos` past it.
/// Returns `None` on truncated input or a varint longer than 10 bytes.
#[inline]
pub fn read_varint_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // overflows u64: corrupt input
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Decode a varint that must fit in a `u32`.
#[inline]
pub fn read_varint_u32(buf: &[u8], pos: &mut usize) -> Option<u32> {
    let v = read_varint_u64(buf, pos)?;
    u32::try_from(v).ok()
}

/// Map a signed value onto an unsigned one with small absolute values
/// staying small: `0, -1, 1, -2, 2, …` → `0, 1, 2, 3, 4, …`.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Append a zigzag-varint-encoded signed delta.
#[inline]
pub fn write_delta(buf: &mut Vec<u8>, delta: i64) {
    write_varint_u64(buf, zigzag(delta));
}

/// Decode a zigzag-varint-encoded signed delta.
#[inline]
pub fn read_delta(buf: &[u8], pos: &mut usize) -> Option<i64> {
    read_varint_u64(buf, pos).map(unzigzag)
}

/// Append `payload` as a length-prefixed record: varint byte length, then
/// the bytes. Returns the total number of bytes appended.
pub fn write_record(buf: &mut Vec<u8>, payload: &[u8]) -> usize {
    let before = buf.len();
    write_varint_u64(buf, payload.len() as u64);
    buf.extend_from_slice(payload);
    buf.len() - before
}

/// Decode the record starting at `*pos`: returns its payload slice and
/// advances `*pos` past it. `None` when the length prefix is truncated or
/// points past the end of `buf` (a torn record).
pub fn read_record<'a>(buf: &'a [u8], pos: &mut usize) -> Option<&'a [u8]> {
    let len = read_varint_u64(buf, pos)? as usize;
    let end = pos.checked_add(len)?;
    if end > buf.len() {
        return None;
    }
    let payload = &buf[*pos..end];
    *pos = end;
    Some(payload)
}

/// 64-bit FNV-1a over `bytes` — the torn-write detector of the page format.
/// Not cryptographic; it only needs to make a partially persisted page
/// overwhelmingly unlikely to verify.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---- delta-varint posting lists ---------------------------------------------

/// A delta-varint-compressed, strictly increasing `u64` sequence — the
/// posting-list representation of the paged tier (record ordinals per
/// vertex, in the inverted-index sense). Values are stored as gaps from the
/// previous value, so dense id spaces compress to ~1 byte per entry.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PostingList {
    bytes: Vec<u8>,
    last: u64,
    len: usize,
}

impl PostingList {
    /// An empty posting list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of postings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list holds no postings.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Compressed size in bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The most recently appended value (`None` when empty).
    pub fn last(&self) -> Option<u64> {
        if self.len == 0 {
            None
        } else {
            Some(self.last)
        }
    }

    /// Append `value`, which must be strictly greater than every value
    /// appended before it (posting lists are sorted by construction).
    ///
    /// # Panics
    /// Panics when `value` does not increase — that is a logic error of the
    /// caller, not a data-corruption condition.
    pub fn push(&mut self, value: u64) {
        if self.len == 0 {
            write_varint_u64(&mut self.bytes, value);
        } else {
            assert!(
                value > self.last,
                "posting lists are strictly increasing: {} after {}",
                value,
                self.last
            );
            write_varint_u64(&mut self.bytes, value - self.last);
        }
        self.last = value;
        self.len += 1;
    }

    /// Append this list's persistent image to `out`: varint count, varint
    /// last value, varint byte length, then the delta bytes verbatim. Used
    /// by the checkpoint sidecar of the paged log.
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        write_varint_u64(out, self.len as u64);
        write_varint_u64(out, self.last);
        write_varint_u64(out, self.bytes.len() as u64);
        out.extend_from_slice(&self.bytes);
    }

    /// Decode a list serialized by [`PostingList::serialize_into`] starting
    /// at `*pos`, advancing `*pos` past it. `None` on truncated input or on
    /// delta bytes that do not decode to exactly `len` postings.
    pub fn deserialize(buf: &[u8], pos: &mut usize) -> Option<Self> {
        let len = read_varint_u64(buf, pos)? as usize;
        let last = read_varint_u64(buf, pos)?;
        let byte_len = read_varint_u64(buf, pos)? as usize;
        let end = pos.checked_add(byte_len)?;
        if end > buf.len() {
            return None;
        }
        let bytes = buf[*pos..end].to_vec();
        *pos = end;
        // Validate the delta stream: it must decode to exactly `len`
        // strictly increasing values ending at `last`.
        let mut decoded_last = 0u64;
        let mut inner = 0usize;
        for i in 0..len {
            let gap = read_varint_u64(&bytes, &mut inner)?;
            decoded_last = if i == 0 {
                gap
            } else if gap == 0 {
                return None; // zero gap breaks strict monotonicity
            } else {
                decoded_last.checked_add(gap)?
            };
        }
        if inner != bytes.len() || (len > 0 && decoded_last != last) {
            return None;
        }
        Some(PostingList { bytes, last, len })
    }

    /// Streaming decoder over the postings (no intermediate `Vec`).
    pub fn iter(&self) -> PostingCursor<'_> {
        PostingCursor {
            bytes: &self.bytes,
            pos: 0,
            prev: 0,
            first: true,
            remaining: self.len,
        }
    }
}

impl<'a> IntoIterator for &'a PostingList {
    type Item = u64;
    type IntoIter = PostingCursor<'a>;
    fn into_iter(self) -> PostingCursor<'a> {
        self.iter()
    }
}

/// Streaming decoder of a [`PostingList`].
#[derive(Debug, Clone)]
pub struct PostingCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    prev: u64,
    first: bool,
    remaining: usize,
}

impl Iterator for PostingCursor<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.remaining == 0 {
            return None;
        }
        let gap = read_varint_u64(self.bytes, &mut self.pos)
            .expect("posting bytes are produced by PostingList::push and always decode");
        let value = if self.first {
            self.first = false;
            gap
        } else {
            self.prev + gap
        };
        self.prev = value;
        self.remaining -= 1;
        Some(value)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for PostingCursor<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrips_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint_u64(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut buf = Vec::new();
        write_varint_u64(&mut buf, u64::MAX);
        let mut pos = 0;
        assert_eq!(read_varint_u64(&buf[..buf.len() - 1], &mut pos), None);
        // 11 continuation bytes can never be a valid u64.
        let overlong = [0x80u8; 11];
        let mut pos = 0;
        assert_eq!(read_varint_u64(&overlong, &mut pos), None);
    }

    #[test]
    fn zigzag_roundtrips() {
        for v in [0i64, -1, 1, -2, 2, i64::MIN, i64::MAX, -123_456, 123_456] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn length_prefixed_records_roundtrip_and_detect_tears() {
        let mut buf = Vec::new();
        write_record(&mut buf, b"alpha");
        write_record(&mut buf, b"");
        write_record(&mut buf, b"gamma-gamma");
        let mut pos = 0;
        assert_eq!(read_record(&buf, &mut pos), Some(&b"alpha"[..]));
        assert_eq!(read_record(&buf, &mut pos), Some(&b""[..]));
        assert_eq!(read_record(&buf, &mut pos), Some(&b"gamma-gamma"[..]));
        assert_eq!(pos, buf.len());
        // Truncating the last record's payload is detected, not mis-read.
        let torn = &buf[..buf.len() - 3];
        let mut pos = 0;
        assert!(read_record(torn, &mut pos).is_some());
        assert!(read_record(torn, &mut pos).is_some());
        assert_eq!(read_record(torn, &mut pos), None);
    }

    #[test]
    fn checksum_differs_on_any_flip() {
        let base = checksum(b"mnemonic page payload");
        let mut copy = b"mnemonic page payload".to_vec();
        copy[3] ^= 1;
        assert_ne!(base, checksum(&copy));
        assert_eq!(base, checksum(b"mnemonic page payload"));
    }

    #[test]
    fn posting_list_roundtrips_and_compresses_dense_runs() {
        let mut list = PostingList::new();
        let values: Vec<u64> = (0..1000).map(|i| 10 + i).collect();
        for &v in &values {
            list.push(v);
        }
        assert_eq!(list.iter().collect::<Vec<_>>(), values);
        assert_eq!(list.len(), 1000);
        assert_eq!(list.last(), Some(1009));
        // A dense run is ~1 byte per gap vs 8 bytes raw.
        assert!(
            list.compressed_bytes() < 1100,
            "{}",
            list.compressed_bytes()
        );
    }

    #[test]
    fn posting_list_serialization_roundtrips_and_rejects_corruption() {
        let mut list = PostingList::new();
        for v in [3u64, 9, 10, 400, 100_000] {
            list.push(v);
        }
        let mut buf = Vec::new();
        list.serialize_into(&mut buf);
        PostingList::new().serialize_into(&mut buf); // empty list too
        let mut pos = 0;
        assert_eq!(PostingList::deserialize(&buf, &mut pos), Some(list));
        assert_eq!(
            PostingList::deserialize(&buf, &mut pos),
            Some(PostingList::new())
        );
        assert_eq!(pos, buf.len());
        // Truncation is detected, not mis-read.
        let mut pos = 0;
        assert_eq!(PostingList::deserialize(&buf[..4], &mut pos), None);
        // A corrupted gap that breaks monotonicity is rejected.
        let mut list = PostingList::new();
        list.push(7);
        list.push(8);
        let mut buf = Vec::new();
        list.serialize_into(&mut buf);
        *buf.last_mut().unwrap() = 0; // gap 1 -> gap 0
        let mut pos = 0;
        assert_eq!(PostingList::deserialize(&buf, &mut pos), None);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn posting_list_rejects_non_increasing() {
        let mut list = PostingList::new();
        list.push(5);
        list.push(5);
    }
}
