//! The on-disk page format of the paged storage tier.
//!
//! # Page-format invariants
//!
//! Every page is exactly `page_size` bytes on disk and starts with a
//! 32-byte header, little-endian:
//!
//! | offset | bytes | field |
//! |-------:|------:|-------|
//! | 0      | 4     | magic `0x4D4E5047` (`"GPNM"` read LE → `"MNPG"`) |
//! | 4      | 4     | page id — must equal the id implied by the file offset |
//! | 8      | 8     | generation stamp — monotonically increasing per write; a reread page must never carry a *newer* generation than the manager has issued |
//! | 16     | 4     | `used` — payload bytes in use (`used ≤ page_size - 32`) |
//! | 20     | 4     | record count |
//! | 24     | 8     | FNV-1a checksum over header fields 0–23 and `payload[..used]` |
//!
//! The payload is a sequence of [length-prefixed
//! records](crate::storage::codec::write_record). A page is **valid** iff
//! the magic matches, the id matches its slot, `used` is in bounds, and the
//! checksum verifies; anything else is reported as a torn write
//! ([`std::io::ErrorKind::InvalidData`]) — a crash mid-write leaves either
//! the old page (old generation, valid) or a tear (invalid), never a
//! silently wrong read.

use crate::storage::codec;
use std::io;

/// Magic number at offset 0 of every page.
pub const PAGE_MAGIC: u32 = 0x4D4E_5047;

/// Size of the fixed page header in bytes.
pub const PAGE_HEADER_BYTES: usize = 32;

/// Smallest supported page size (4 KiB).
pub const MIN_PAGE_SIZE: usize = 4 * 1024;

/// Largest supported page size (64 KiB).
pub const MAX_PAGE_SIZE: usize = 64 * 1024;

/// One fixed-size page: a header plus a payload of length-prefixed records.
/// In memory only the used payload is held; [`Page::to_bytes`] pads to the
/// full page size for disk I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    page_size: usize,
    id: u32,
    generation: u64,
    record_count: u32,
    payload: Vec<u8>,
}

impl Page {
    /// An empty page with the given id. `page_size` must already be
    /// validated by the page manager.
    pub fn new(page_size: usize, id: u32) -> Self {
        Page {
            page_size,
            id,
            generation: 0,
            record_count: 0,
            payload: Vec::new(),
        }
    }

    /// The page's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The generation stamp of the last write (0 for a never-written page).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of records in the payload.
    pub fn record_count(&self) -> u32 {
        self.record_count
    }

    /// Payload bytes in use.
    pub fn used(&self) -> usize {
        self.payload.len()
    }

    /// The used payload bytes (the record area, header excluded).
    pub fn payload_slice(&self) -> &[u8] {
        &self.payload
    }

    /// Payload capacity of a page of this size.
    pub fn capacity(&self) -> usize {
        self.page_size - PAGE_HEADER_BYTES
    }

    /// Whether a record payload of `len` bytes still fits (including its
    /// length prefix, conservatively sized at 10 bytes max).
    pub fn fits(&self, len: usize) -> bool {
        // The varint length prefix takes at most 10 bytes; being exact here
        // buys nothing, being conservative can never overflow a page.
        self.payload.len() + len + 10 <= self.capacity()
    }

    /// Append one length-prefixed record. Returns `false` (leaving the page
    /// untouched) when the record does not fit.
    pub fn push_record(&mut self, record: &[u8]) -> bool {
        if !self.fits(record.len()) {
            return false;
        }
        codec::write_record(&mut self.payload, record);
        self.record_count += 1;
        true
    }

    /// Reset to an empty page with a (possibly new) id.
    pub fn reset(&mut self, id: u32) {
        self.id = id;
        self.generation = 0;
        self.record_count = 0;
        self.payload.clear();
    }

    /// Stamp the page with a write generation (done by the page manager on
    /// every write-out).
    pub fn stamp(&mut self, generation: u64) {
        self.generation = generation;
    }

    /// The block iterator: stream the page's records as payload slices
    /// without materialising a `Vec` of them.
    pub fn records(&self) -> BlockIter<'_> {
        BlockIter {
            payload: &self.payload,
            pos: 0,
            remaining: self.record_count,
        }
    }

    /// Serialise into a full `page_size` byte image (header + payload +
    /// zero padding) ready for positioned disk I/O.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.page_size);
        buf.extend_from_slice(&PAGE_MAGIC.to_le_bytes());
        buf.extend_from_slice(&self.id.to_le_bytes());
        buf.extend_from_slice(&self.generation.to_le_bytes());
        buf.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&self.record_count.to_le_bytes());
        let sum = Self::checksum_of(&buf[..24], &self.payload);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf.extend_from_slice(&self.payload);
        buf.resize(self.page_size, 0);
        buf
    }

    /// Parse and verify a full page image read from slot `expect_id`.
    ///
    /// # Errors
    /// [`io::ErrorKind::InvalidData`] when the image fails any page-format
    /// invariant (bad magic, id mismatch, out-of-bounds `used`, checksum
    /// mismatch) — the torn-write detection path.
    pub fn from_bytes(bytes: &[u8], page_size: usize, expect_id: u32) -> io::Result<Page> {
        let corrupt = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("torn or corrupt page {expect_id}: {what}"),
            )
        };
        if bytes.len() != page_size {
            return Err(corrupt("short read"));
        }
        let word32 = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let word64 = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        if word32(0) != PAGE_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let id = word32(4);
        if id != expect_id {
            return Err(corrupt("page id does not match its slot"));
        }
        let generation = word64(8);
        let used = word32(16) as usize;
        let record_count = word32(20);
        if used > page_size - PAGE_HEADER_BYTES {
            return Err(corrupt("used length out of bounds"));
        }
        let payload = &bytes[PAGE_HEADER_BYTES..PAGE_HEADER_BYTES + used];
        if word64(24) != Self::checksum_of(&bytes[..24], payload) {
            return Err(corrupt("checksum mismatch"));
        }
        // The records themselves must tile the payload exactly.
        let mut pos = 0;
        for _ in 0..record_count {
            if codec::read_record(payload, &mut pos).is_none() {
                return Err(corrupt("record overruns payload"));
            }
        }
        if pos != used {
            return Err(corrupt("payload trailing garbage"));
        }
        Ok(Page {
            page_size,
            id,
            generation,
            record_count,
            payload: payload.to_vec(),
        })
    }

    fn checksum_of(header_prefix: &[u8], payload: &[u8]) -> u64 {
        // One pass over header-then-payload, equivalent to hashing their
        // concatenation: FNV-1a is a running fold, so seed the payload hash
        // with the header hash.
        let mut bytes = Vec::with_capacity(header_prefix.len() + payload.len());
        bytes.extend_from_slice(header_prefix);
        bytes.extend_from_slice(payload);
        codec::checksum(&bytes)
    }
}

/// Streaming iterator over the length-prefixed records of one page — the
/// perlin-core-style *block iterator*: records are yielded as borrowed
/// slices, no `Vec` of records is ever built.
#[derive(Debug, Clone)]
pub struct BlockIter<'a> {
    payload: &'a [u8],
    pos: usize,
    remaining: u32,
}

impl<'a> Iterator for BlockIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // A validated page always decodes (from_bytes walked every record);
        // an in-memory page was built by push_record. Either way this is
        // unreachable on the success path.
        codec::read_record(self.payload, &mut self.pos)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_roundtrips_through_bytes() {
        let mut page = Page::new(MIN_PAGE_SIZE, 7);
        assert!(page.push_record(b"one"));
        assert!(page.push_record(b"two-two"));
        assert!(page.push_record(b""));
        page.stamp(42);
        let bytes = page.to_bytes();
        assert_eq!(bytes.len(), MIN_PAGE_SIZE);
        let back = Page::from_bytes(&bytes, MIN_PAGE_SIZE, 7).unwrap();
        assert_eq!(back, page);
        let records: Vec<&[u8]> = back.records().collect();
        assert_eq!(records, vec![&b"one"[..], &b"two-two"[..], &b""[..]]);
    }

    #[test]
    fn page_rejects_overflow() {
        let mut page = Page::new(MIN_PAGE_SIZE, 0);
        let big = vec![0xabu8; page.capacity() + 1];
        assert!(!page.push_record(&big));
        assert_eq!(page.record_count(), 0);
        // Fill with records until one no longer fits; the page stays valid.
        let chunk = vec![1u8; 100];
        let mut pushed = 0;
        while page.push_record(&chunk) {
            pushed += 1;
        }
        assert!(pushed > 0);
        assert_eq!(page.record_count() as usize, pushed);
        assert!(page.used() <= page.capacity());
    }

    #[test]
    fn corruption_is_detected() {
        let mut page = Page::new(MIN_PAGE_SIZE, 3);
        page.push_record(b"payload payload payload");
        page.stamp(1);
        let good = page.to_bytes();
        assert!(Page::from_bytes(&good, MIN_PAGE_SIZE, 3).is_ok());

        // Wrong slot.
        assert!(Page::from_bytes(&good, MIN_PAGE_SIZE, 4).is_err());
        // Flipped payload byte.
        let mut bad = good.clone();
        bad[PAGE_HEADER_BYTES + 2] ^= 0x40;
        assert!(Page::from_bytes(&bad, MIN_PAGE_SIZE, 3).is_err());
        // Flipped header byte (generation).
        let mut bad = good.clone();
        bad[9] ^= 0x01;
        assert!(Page::from_bytes(&bad, MIN_PAGE_SIZE, 3).is_err());
        // Short read.
        assert!(Page::from_bytes(&good[..MIN_PAGE_SIZE - 1], MIN_PAGE_SIZE, 3).is_err());
        // Zeroed page (never written).
        let zero = vec![0u8; MIN_PAGE_SIZE];
        assert!(Page::from_bytes(&zero, MIN_PAGE_SIZE, 3).is_err());
    }
}
