//! The RAM page cache: a fixed budget of resident pages in front of the
//! [`PageManager`], with second-chance (clock) eviction, pin/unpin, and
//! dirty-page write-back.
//!
//! The cache is what bounds the paged tier's memory: no matter how large
//! the backing file grows, at most `capacity` pages are resident. Readers
//! [`pin`](PageCache::pin) a page to keep it resident while they stream its
//! records and [`unpin`](PageCache::unpin) it when done; writers install
//! freshly sealed pages with [`put_dirty`](PageCache::put_dirty) and the
//! cache writes them back when they are evicted (or on
//! [`flush`](PageCache::flush)). Pinned pages are never evicted; a cache
//! whose every frame is pinned reports an error rather than exceeding its
//! budget.

use crate::storage::page::Page;
use crate::storage::pager::PageManager;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io;

/// Hit/miss/eviction counters of one [`PageCache`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageCacheStats {
    /// Pins served from a resident page.
    pub hits: u64,
    /// Pins that had to read the page from disk.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Dirty pages written back to disk (on eviction or flush).
    pub write_backs: u64,
}

impl PageCacheStats {
    /// Hit fraction of all pins (0 when the cache was never used).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Frame {
    page: Page,
    pins: u32,
    referenced: bool,
    dirty: bool,
}

/// Second-chance page cache over a [`PageManager`]. See the [module
/// documentation](self) for the pin/write-back contract.
#[derive(Debug)]
pub struct PageCache {
    frames: Vec<Option<Frame>>,
    /// page id → frame index of every resident page.
    map: HashMap<u32, usize>,
    hand: usize,
    stats: PageCacheStats,
}

impl PageCache {
    /// A cache holding at most `capacity` resident pages (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        PageCache {
            frames: (0..capacity).map(|_| None).collect(),
            map: HashMap::new(),
            hand: 0,
            stats: PageCacheStats::default(),
        }
    }

    /// The resident-page budget.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Pages currently resident (always `<= capacity`).
    pub fn resident_pages(&self) -> usize {
        self.map.len()
    }

    /// Current counters.
    pub fn stats(&self) -> PageCacheStats {
        self.stats
    }

    /// Whether page `id` is resident (no pin, no stats change).
    pub fn contains(&self, id: u32) -> bool {
        self.map.contains_key(&id)
    }

    /// Pin page `id`, reading it through `pager` on a miss. Returns the
    /// frame index for [`PageCache::page`] / [`PageCache::unpin`]. The page
    /// cannot be evicted until every pin is released.
    pub fn pin(&mut self, pager: &mut PageManager, id: u32) -> io::Result<usize> {
        if let Some(&idx) = self.map.get(&id) {
            self.stats.hits += 1;
            let frame = self.frames[idx].as_mut().expect("mapped frame is filled");
            frame.pins += 1;
            frame.referenced = true;
            return Ok(idx);
        }
        self.stats.misses += 1;
        let page = pager.read_page(id)?;
        let idx = self.install(pager, page, false)?;
        let frame = self.frames[idx].as_mut().expect("just installed");
        frame.pins = 1;
        frame.referenced = true;
        Ok(idx)
    }

    /// Release one pin of `frame`.
    ///
    /// # Panics
    /// Panics when the frame is not pinned — an unpin without a matching
    /// pin is a caller logic error.
    pub fn unpin(&mut self, frame: usize) {
        let f = self.frames[frame].as_mut().expect("unpin of empty frame");
        assert!(f.pins > 0, "unpin without a matching pin");
        f.pins -= 1;
    }

    /// The page in `frame` (valid between pin and unpin).
    pub fn page(&self, frame: usize) -> &Page {
        &self.frames[frame].as_ref().expect("pinned frame").page
    }

    /// Mutable access to the page in `frame`; marks it dirty so it will be
    /// written back before eviction.
    pub fn page_mut(&mut self, frame: usize) -> &mut Page {
        let f = self.frames[frame].as_mut().expect("pinned frame");
        f.dirty = true;
        &mut f.page
    }

    /// Install a freshly built page as resident and dirty **without**
    /// touching disk now; it is written back when evicted or flushed. This
    /// is the write path of the paged edge log: sealed tail pages enter the
    /// cache here, so a sliding-window workload that reads them back soon
    /// after sees hits instead of a disk round-trip.
    pub fn put_dirty(&mut self, pager: &mut PageManager, page: Page) -> io::Result<()> {
        if let Some(&idx) = self.map.get(&page.id()) {
            let frame = self.frames[idx].as_mut().expect("mapped frame is filled");
            frame.page = page;
            frame.dirty = true;
            frame.referenced = true;
            return Ok(());
        }
        let idx = self.install(pager, page, true)?;
        self.frames[idx]
            .as_mut()
            .expect("just installed")
            .referenced = true;
        Ok(())
    }

    /// Write back every dirty resident page (they stay resident and clean).
    pub fn flush(&mut self, pager: &mut PageManager) -> io::Result<()> {
        for frame in self.frames.iter_mut().flatten() {
            if frame.dirty {
                pager.write_page(&mut frame.page)?;
                frame.dirty = false;
                self.stats.write_backs += 1;
            }
        }
        Ok(())
    }

    /// Drop page `id` from the cache if resident (writing it back when
    /// dirty). Used when a page's slot is released.
    pub fn forget(&mut self, pager: &mut PageManager, id: u32) -> io::Result<()> {
        if let Some(idx) = self.map.remove(&id) {
            let frame = self.frames[idx].take().expect("mapped frame is filled");
            debug_assert_eq!(frame.pins, 0, "forgetting a pinned page");
            if frame.dirty {
                let mut page = frame.page;
                pager.write_page(&mut page)?;
                self.stats.write_backs += 1;
            }
        }
        Ok(())
    }

    /// Put `page` into a free frame, evicting a victim if needed.
    fn install(&mut self, pager: &mut PageManager, page: Page, dirty: bool) -> io::Result<usize> {
        let idx = self.victim_frame(pager)?;
        self.map.insert(page.id(), idx);
        self.frames[idx] = Some(Frame {
            page,
            pins: 0,
            referenced: false,
            dirty,
        });
        Ok(idx)
    }

    /// Second-chance scan: free frames first, then the first unpinned frame
    /// whose reference bit is already clear (clearing bits as the hand
    /// passes). Two full laps guarantee termination: the first lap clears
    /// every unpinned frame's bit, the second takes one.
    fn victim_frame(&mut self, pager: &mut PageManager) -> io::Result<usize> {
        if let Some(idx) = self.frames.iter().position(|f| f.is_none()) {
            return Ok(idx);
        }
        let n = self.frames.len();
        for _ in 0..2 * n {
            let idx = self.hand;
            self.hand = (self.hand + 1) % n;
            let frame = self.frames[idx].as_mut().expect("full cache has no holes");
            if frame.pins > 0 {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            let frame = self.frames[idx].take().expect("checked above");
            self.map.remove(&frame.page.id());
            self.stats.evictions += 1;
            if frame.dirty {
                let mut page = frame.page;
                pager.write_page(&mut page)?;
                self.stats.write_backs += 1;
            }
            return Ok(idx);
        }
        Err(io::Error::other(format!(
            "page cache exhausted: all {n} frames are pinned"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::page::MIN_PAGE_SIZE;

    fn pager_with_pages(n: u32, tag: &str) -> PageManager {
        let mut pager = PageManager::create_temp(MIN_PAGE_SIZE, tag).unwrap();
        for i in 0..n {
            let id = pager.alloc();
            assert_eq!(id, i);
            let mut page = Page::new(MIN_PAGE_SIZE, id);
            page.push_record(format!("page {i}").as_bytes());
            pager.write_page(&mut page).unwrap();
        }
        pager
    }

    #[test]
    fn hits_misses_and_budget() {
        let mut pager = pager_with_pages(5, "budget");
        let mut cache = PageCache::new(2);
        for id in 0..5 {
            let f = cache.pin(&mut pager, id).unwrap();
            assert_eq!(
                cache.page(f).records().next().unwrap(),
                format!("page {id}").as_bytes()
            );
            cache.unpin(f);
            assert!(cache.resident_pages() <= 2);
        }
        assert_eq!(cache.stats().misses, 5);
        assert_eq!(cache.stats().evictions, 3);
        // Page 4 is resident: re-pinning it is a hit.
        let f = cache.pin(&mut pager, 4).unwrap();
        cache.unpin(f);
        assert_eq!(cache.stats().hits, 1);
        pager.destroy().unwrap();
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let mut pager = pager_with_pages(4, "pinned");
        let mut cache = PageCache::new(2);
        let f0 = cache.pin(&mut pager, 0).unwrap();
        // Stream other pages through the second frame; page 0 must stay.
        for id in 1..4 {
            let f = cache.pin(&mut pager, id).unwrap();
            cache.unpin(f);
        }
        assert!(cache.contains(0));
        assert_eq!(cache.page(f0).records().next().unwrap(), b"page 0");
        cache.unpin(f0);
        // Fully pinned cache reports exhaustion instead of going over
        // budget: pin two distinct pages, then miss on a third.
        let f0 = cache.pin(&mut pager, 0).unwrap();
        let f1 = cache.pin(&mut pager, 1).unwrap();
        assert!(cache.pin(&mut pager, 2).is_err());
        cache.unpin(f0);
        cache.unpin(f1);
        pager.destroy().unwrap();
    }

    #[test]
    fn dirty_pages_write_back_on_eviction_and_flush() {
        let mut pager = pager_with_pages(3, "dirty");
        let mut cache = PageCache::new(1);
        // Mutate page 0 through the cache.
        let f = cache.pin(&mut pager, 0).unwrap();
        cache.page_mut(f).push_record(b"appended via cache");
        cache.unpin(f);
        // Evict it by pinning another page: the dirty copy must be written.
        let f = cache.pin(&mut pager, 1).unwrap();
        cache.unpin(f);
        assert_eq!(cache.stats().write_backs, 1);
        let back = pager.read_page(0).unwrap();
        let records: Vec<&[u8]> = back.records().collect();
        assert_eq!(records, vec![&b"page 0"[..], &b"appended via cache"[..]]);
        // put_dirty + flush also writes back.
        let mut fresh = Page::new(MIN_PAGE_SIZE, 2);
        fresh.push_record(b"replaced");
        cache.put_dirty(&mut pager, fresh).unwrap();
        cache.flush(&mut pager).unwrap();
        assert_eq!(cache.stats().write_backs, 2);
        let back = pager.read_page(2).unwrap();
        assert_eq!(back.records().next().unwrap(), b"replaced");
        pager.destroy().unwrap();
    }
}
