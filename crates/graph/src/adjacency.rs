//! Per-vertex adjacency lists with O(1) swap-remove deletion.
//!
//! Mnemonic stores the data graph "in the adjacency list format ... where
//! each vertex has a list that stores all its outgoing and incoming edges"
//! (Section II-A). Deleting an edge locates its entry in the owning vertex's
//! list, swaps it with the last entry and shrinks the list (Section IV-A),
//! which keeps deletion constant-time and keeps candidate scans cache
//! friendly because live entries stay densely packed.

use crate::ids::{EdgeId, VertexId};
use serde::{Deserialize, Serialize};

/// One entry in an adjacency list: the neighbouring vertex plus the id of the
/// connecting edge. Multiple entries with the same neighbour represent
/// parallel edges and are kept distinct through their edge ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AdjEntry {
    /// The vertex on the other side of the edge.
    pub neighbor: VertexId,
    /// The id of the edge connecting the owner to `neighbor`.
    pub edge: EdgeId,
}

/// The adjacency state of a single vertex: its outgoing and incoming entries.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct VertexAdjacency {
    out: Vec<AdjEntry>,
    inc: Vec<AdjEntry>,
}

impl VertexAdjacency {
    /// Outgoing entries (this vertex is the source).
    #[inline]
    pub fn outgoing(&self) -> &[AdjEntry] {
        &self.out
    }

    /// Incoming entries (this vertex is the destination).
    #[inline]
    pub fn incoming(&self) -> &[AdjEntry] {
        &self.inc
    }

    /// Out-degree (counting parallel edges).
    #[inline]
    pub fn out_degree(&self) -> usize {
        self.out.len()
    }

    /// In-degree (counting parallel edges).
    #[inline]
    pub fn in_degree(&self) -> usize {
        self.inc.len()
    }

    /// Total degree.
    #[inline]
    pub fn degree(&self) -> usize {
        self.out.len() + self.inc.len()
    }

    fn push_out(&mut self, entry: AdjEntry) {
        self.out.push(entry);
    }

    fn push_in(&mut self, entry: AdjEntry) {
        self.inc.push(entry);
    }

    fn swap_remove_out(&mut self, edge: EdgeId) -> bool {
        if let Some(pos) = self.out.iter().position(|e| e.edge == edge) {
            self.out.swap_remove(pos);
            true
        } else {
            false
        }
    }

    fn swap_remove_in(&mut self, edge: EdgeId) -> bool {
        if let Some(pos) = self.inc.iter().position(|e| e.edge == edge) {
            self.inc.swap_remove(pos);
            true
        } else {
            false
        }
    }
}

/// The adjacency table of the whole graph, indexed by dense vertex ids.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct AdjacencyTable {
    vertices: Vec<VertexAdjacency>,
}

impl AdjacencyTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of vertex slots (touched vertices).
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether no vertex has been touched yet.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Make sure vertex `v` has an adjacency slot, growing the table if
    /// needed, and return it mutably.
    pub fn ensure_vertex(&mut self, v: VertexId) -> &mut VertexAdjacency {
        if v.index() >= self.vertices.len() {
            self.vertices
                .resize_with(v.index() + 1, VertexAdjacency::default);
        }
        &mut self.vertices[v.index()]
    }

    /// The adjacency of `v` if it has ever been touched.
    pub fn vertex(&self, v: VertexId) -> Option<&VertexAdjacency> {
        self.vertices.get(v.index())
    }

    /// Outgoing entries of `v` (empty slice for unknown vertices).
    pub fn outgoing(&self, v: VertexId) -> &[AdjEntry] {
        self.vertex(v).map(|a| a.outgoing()).unwrap_or(&[])
    }

    /// Incoming entries of `v` (empty slice for unknown vertices).
    pub fn incoming(&self, v: VertexId) -> &[AdjEntry] {
        self.vertex(v).map(|a| a.incoming()).unwrap_or(&[])
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.vertex(v).map(|a| a.out_degree()).unwrap_or(0)
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.vertex(v).map(|a| a.in_degree()).unwrap_or(0)
    }

    /// Record the insertion of edge `edge` from `src` to `dst`.
    pub fn insert_edge(&mut self, edge: EdgeId, src: VertexId, dst: VertexId) {
        self.ensure_vertex(src).push_out(AdjEntry {
            neighbor: dst,
            edge,
        });
        self.ensure_vertex(dst).push_in(AdjEntry {
            neighbor: src,
            edge,
        });
    }

    /// Remove edge `edge` running from `src` to `dst` using swap-remove on
    /// both endpoint lists. Returns true when both entries were found.
    pub fn remove_edge(&mut self, edge: EdgeId, src: VertexId, dst: VertexId) -> bool {
        let out_ok = self
            .vertices
            .get_mut(src.index())
            .map(|a| a.swap_remove_out(edge))
            .unwrap_or(false);
        let in_ok = self
            .vertices
            .get_mut(dst.index())
            .map(|a| a.swap_remove_in(edge))
            .unwrap_or(false);
        out_ok && in_ok
    }

    /// Iterate over every (vertex, adjacency) pair that has been touched.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &VertexAdjacency)> {
        self.vertices
            .iter()
            .enumerate()
            .map(|(i, adj)| (VertexId(i as u32), adj))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_populates_both_endpoints() {
        let mut table = AdjacencyTable::new();
        table.insert_edge(EdgeId(0), VertexId(1), VertexId(2));
        table.insert_edge(EdgeId(1), VertexId(1), VertexId(3));
        assert_eq!(table.out_degree(VertexId(1)), 2);
        assert_eq!(table.in_degree(VertexId(2)), 1);
        assert_eq!(table.in_degree(VertexId(3)), 1);
        assert_eq!(table.outgoing(VertexId(1))[0].neighbor, VertexId(2));
        assert_eq!(table.incoming(VertexId(3))[0].edge, EdgeId(1));
    }

    #[test]
    fn parallel_edges_are_distinct_entries() {
        let mut table = AdjacencyTable::new();
        table.insert_edge(EdgeId(0), VertexId(0), VertexId(1));
        table.insert_edge(EdgeId(1), VertexId(0), VertexId(1));
        assert_eq!(table.out_degree(VertexId(0)), 2);
        let edges: Vec<EdgeId> = table.outgoing(VertexId(0)).iter().map(|e| e.edge).collect();
        assert!(edges.contains(&EdgeId(0)) && edges.contains(&EdgeId(1)));
    }

    #[test]
    fn remove_uses_swap_remove_semantics() {
        let mut table = AdjacencyTable::new();
        table.insert_edge(EdgeId(0), VertexId(0), VertexId(1));
        table.insert_edge(EdgeId(1), VertexId(0), VertexId(2));
        table.insert_edge(EdgeId(2), VertexId(0), VertexId(3));
        assert!(table.remove_edge(EdgeId(0), VertexId(0), VertexId(1)));
        assert_eq!(table.out_degree(VertexId(0)), 2);
        // The former last entry moved into slot 0.
        assert_eq!(table.outgoing(VertexId(0))[0].edge, EdgeId(2));
        assert_eq!(table.in_degree(VertexId(1)), 0);
    }

    #[test]
    fn remove_missing_edge_returns_false() {
        let mut table = AdjacencyTable::new();
        table.insert_edge(EdgeId(0), VertexId(0), VertexId(1));
        assert!(!table.remove_edge(EdgeId(5), VertexId(0), VertexId(1)));
        assert!(!table.remove_edge(EdgeId(0), VertexId(7), VertexId(8)));
        assert_eq!(table.out_degree(VertexId(0)), 1);
    }

    #[test]
    fn unknown_vertex_has_zero_degree() {
        let table = AdjacencyTable::new();
        assert_eq!(table.out_degree(VertexId(99)), 0);
        assert_eq!(table.in_degree(VertexId(99)), 0);
        assert!(table.outgoing(VertexId(99)).is_empty());
    }

    #[test]
    fn self_loop_appears_in_both_lists() {
        let mut table = AdjacencyTable::new();
        table.insert_edge(EdgeId(0), VertexId(4), VertexId(4));
        assert_eq!(table.out_degree(VertexId(4)), 1);
        assert_eq!(table.in_degree(VertexId(4)), 1);
        assert!(table.remove_edge(EdgeId(0), VertexId(4), VertexId(4)));
        assert_eq!(table.vertex(VertexId(4)).unwrap().degree(), 0);
    }
}
