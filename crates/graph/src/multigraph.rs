//! The streaming multigraph: the substrate every matcher in this workspace
//! runs on.
//!
//! [`StreamingGraph`] combines the adjacency table, the id-indexed edge
//! records, the attribute stores and the edge-id recycler into the data
//! structure described in Sections II-A and IV-A of the paper:
//!
//! * every edge instance gets its own `edgeId`, so parallel edges (e.g.
//!   repeated NetFlow events between the same hosts) stay distinguishable,
//! * insertion, deletion and record lookup are O(1) amortised,
//! * deleted slots are recycled for later insertions out of the same source
//!   vertex, keeping the placeholder count (and with it the DEBI size)
//!   non-monotonic,
//! * a periodic reset can drop the cumulative structure entirely and restart
//!   from an empty graph.

use crate::adjacency::{AdjEntry, AdjacencyTable};
use crate::attributes::{AttrKey, AttrValue, EdgeAttributeStore, VertexAttributeStore};
use crate::edge::{Edge, EdgeRecord, EdgeTriple};
use crate::ids::{EdgeId, EdgeLabel, Timestamp, VertexId, VertexLabel};
use crate::recycle::EdgeRecycler;
use crate::stats::GraphStats;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

thread_local! {
    /// Reusable scratch for the distinct-neighbour counts below: the
    /// candidacy refresh calls them once per affected vertex per batch, so a
    /// heap allocation per call would dominate the filtering hot path. One
    /// warm-up allocation per thread, zero afterwards.
    static NEIGHBOR_SCRATCH: RefCell<Vec<VertexId>> = const { RefCell::new(Vec::new()) };
}

/// Count the distinct vertices in `neighbors` using the thread-local scratch
/// (sort + dedup in place, allocation-free once warm).
fn count_distinct(neighbors: impl Iterator<Item = VertexId>) -> usize {
    NEIGHBOR_SCRATCH.with(|scratch| {
        let mut seen = scratch.borrow_mut();
        seen.clear();
        seen.extend(neighbors);
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    })
}

/// Construction-time options of the streaming graph.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GraphConfig {
    /// Reuse the slots of deleted edges (paper default: on).
    pub recycle_edge_ids: bool,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            recycle_edge_ids: true,
        }
    }
}

/// Error returned by graph mutations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The referenced edge id has never been allocated.
    UnknownEdge(EdgeId),
    /// The referenced edge id exists but its slot is currently free.
    DeadEdge(EdgeId),
    /// No live edge matches the requested (src, dst, label) triple.
    NoMatchingEdge(VertexId, VertexId, EdgeLabel),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::UnknownEdge(e) => write!(f, "unknown edge id {e}"),
            GraphError::DeadEdge(e) => write!(f, "edge id {e} is not alive"),
            GraphError::NoMatchingEdge(s, d, l) => {
                write!(f, "no live edge {s}->{d} with label {}", l.0)
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A mutable, streaming, directed multigraph with labelled vertices and
/// edges.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StreamingGraph {
    adjacency: AdjacencyTable,
    edges: Vec<EdgeRecord>,
    vertex_attrs: VertexAttributeStore,
    edge_attrs: EdgeAttributeStore,
    recycler: EdgeRecycler,
    stats: GraphStats,
    config: GraphConfig,
}

impl StreamingGraph {
    /// Create an empty graph with the default configuration (recycling on).
    pub fn new() -> Self {
        Self::with_config(GraphConfig::default())
    }

    /// Create an empty graph with an explicit configuration.
    pub fn with_config(config: GraphConfig) -> Self {
        StreamingGraph {
            adjacency: AdjacencyTable::new(),
            edges: Vec::new(),
            vertex_attrs: VertexAttributeStore::new(),
            edge_attrs: EdgeAttributeStore::new(),
            recycler: EdgeRecycler::new(config.recycle_edge_ids),
            stats: GraphStats::default(),
            config,
        }
    }

    /// The configuration the graph was built with.
    pub fn config(&self) -> GraphConfig {
        self.config
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> GraphStats {
        self.stats
    }

    /// Number of live edges.
    pub fn live_edge_count(&self) -> usize {
        self.stats.live_edges as usize
    }

    /// Number of edge placeholders (length of the edge table — includes dead
    /// slots awaiting reuse).
    pub fn placeholder_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of vertices ever touched.
    pub fn vertex_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Upper bound (exclusive) on allocated edge ids; useful for sizing
    /// id-indexed side structures such as DEBI.
    pub fn edge_id_bound(&self) -> usize {
        self.edges.len()
    }

    /// Set the label of a vertex, creating the vertex if necessary.
    pub fn set_vertex_label(&mut self, v: VertexId, label: VertexLabel) {
        self.adjacency.ensure_vertex(v);
        self.stats.vertices = self.adjacency.len() as u64;
        self.vertex_attrs.set_label(v, label);
    }

    /// The label of a vertex (wildcard for unknown vertices).
    pub fn vertex_label(&self, v: VertexId) -> VertexLabel {
        self.vertex_attrs.label(v)
    }

    /// Attach an extra attribute to a vertex.
    pub fn set_vertex_attr(&mut self, v: VertexId, key: impl Into<String>, value: AttrValue) {
        self.vertex_attrs.set_attr(v, key, value);
    }

    /// Read an extra attribute of a vertex by name (hashes the name once;
    /// matchers on the candidacy path should pre-resolve the key with
    /// [`StreamingGraph::vertex_attr_key`] and use
    /// [`StreamingGraph::vertex_attr_by_key`]).
    pub fn vertex_attr(&self, v: VertexId, key: &str) -> Option<&AttrValue> {
        self.vertex_attrs.attr(v, key)
    }

    /// Resolve a vertex-attribute name to its interned [`AttrKey`], if any
    /// vertex ever carried it.
    pub fn vertex_attr_key(&self, key: &str) -> Option<AttrKey> {
        self.vertex_attrs.resolve_key(key)
    }

    /// Read an extra attribute of a vertex by pre-resolved key: no string is
    /// hashed.
    #[inline]
    pub fn vertex_attr_by_key(&self, v: VertexId, key: AttrKey) -> Option<&AttrValue> {
        self.vertex_attrs.attr_by_key(v, key)
    }

    /// Attach an extra attribute to an edge.
    pub fn set_edge_attr(&mut self, e: EdgeId, key: impl Into<String>, value: AttrValue) {
        self.edge_attrs.set_attr(e, key, value);
    }

    /// Read an extra attribute of an edge by name (hashes the name once;
    /// matchers on the candidacy path should pre-resolve the key with
    /// [`StreamingGraph::edge_attr_key`] and use
    /// [`StreamingGraph::edge_attr_by_key`]).
    pub fn edge_attr(&self, e: EdgeId, key: &str) -> Option<&AttrValue> {
        self.edge_attrs.attr(e, key)
    }

    /// Resolve an edge-attribute name to its interned [`AttrKey`], if any
    /// edge ever carried it. Resolve once at query-registration time so the
    /// per-edge filtering path never hashes a `String`.
    pub fn edge_attr_key(&self, key: &str) -> Option<AttrKey> {
        self.edge_attrs.resolve_key(key)
    }

    /// Read an extra attribute of an edge by pre-resolved key: no string is
    /// hashed.
    #[inline]
    pub fn edge_attr_by_key(&self, e: EdgeId, key: AttrKey) -> Option<&AttrValue> {
        self.edge_attrs.attr_by_key(e, key)
    }

    /// Insert an edge described by `triple`; returns the id assigned to it.
    ///
    /// The id is recycled from the source vertex's free list when possible,
    /// otherwise a fresh placeholder is appended.
    pub fn insert_edge(&mut self, triple: EdgeTriple) -> EdgeId {
        self.adjacency.ensure_vertex(triple.src);
        self.adjacency.ensure_vertex(triple.dst);
        self.stats.vertices = self.adjacency.len() as u64;

        let record = EdgeRecord::from_triple(triple);
        let id = match self.recycler.acquire(triple.src) {
            Some(id) => {
                debug_assert!(!self.edges[id.index()].alive, "recycled a live slot");
                self.edge_attrs.clear_edge(id);
                self.edges[id.index()] = record;
                self.stats.recycled_insertions += 1;
                id
            }
            None => {
                let id = EdgeId(self.edges.len() as u32);
                self.edges.push(record);
                id
            }
        };
        self.adjacency.insert_edge(id, triple.src, triple.dst);
        self.stats.live_edges += 1;
        self.stats.total_insertions += 1;
        self.stats.edge_placeholders = self.edges.len() as u64;
        id
    }

    /// Delete the edge with id `id`. The slot is parked for reuse.
    pub fn delete_edge(&mut self, id: EdgeId) -> Result<Edge, GraphError> {
        let record = *self
            .edges
            .get(id.index())
            .ok_or(GraphError::UnknownEdge(id))?;
        if !record.alive {
            return Err(GraphError::DeadEdge(id));
        }
        self.adjacency.remove_edge(id, record.src, record.dst);
        self.edges[id.index()].alive = false;
        self.recycler.release(record.src, id);
        self.stats.live_edges -= 1;
        self.stats.total_deletions += 1;
        Ok(Edge::from_record(id, &record))
    }

    /// Delete one live edge matching `(src, dst, label)`. When several
    /// parallel instances exist the most recently inserted one is removed,
    /// mirroring how the LSBench stream negates a previously streamed triple.
    pub fn delete_matching(
        &mut self,
        src: VertexId,
        dst: VertexId,
        label: EdgeLabel,
    ) -> Result<Edge, GraphError> {
        let found = self
            .adjacency
            .outgoing(src)
            .iter()
            .filter(|entry| entry.neighbor == dst)
            .map(|entry| entry.edge)
            .filter(|&eid| {
                let rec = &self.edges[eid.index()];
                rec.alive && rec.label.matches(label)
            })
            .max_by_key(|&eid| (self.edges[eid.index()].timestamp, eid));
        match found {
            Some(eid) => self.delete_edge(eid),
            None => Err(GraphError::NoMatchingEdge(src, dst, label)),
        }
    }

    /// The record of an edge id if the slot is currently alive.
    pub fn edge(&self, id: EdgeId) -> Option<Edge> {
        self.edges
            .get(id.index())
            .filter(|r| r.alive)
            .map(|r| Edge::from_record(id, r))
    }

    /// The record of an edge id regardless of liveness (used by deletion
    /// pipelines that must inspect an edge after it was removed).
    pub fn edge_record(&self, id: EdgeId) -> Option<&EdgeRecord> {
        self.edges.get(id.index())
    }

    /// Whether the edge id refers to a live edge.
    pub fn is_alive(&self, id: EdgeId) -> bool {
        self.edges.get(id.index()).map(|r| r.alive).unwrap_or(false)
    }

    /// Outgoing adjacency entries of `v`.
    pub fn outgoing(&self, v: VertexId) -> &[AdjEntry] {
        self.adjacency.outgoing(v)
    }

    /// Incoming adjacency entries of `v`.
    pub fn incoming(&self, v: VertexId) -> &[AdjEntry] {
        self.adjacency.incoming(v)
    }

    /// Outgoing edges of `v` as fully materialised [`Edge`] values.
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = Edge> + '_ {
        self.adjacency
            .outgoing(v)
            .iter()
            .filter_map(move |entry| self.edge(entry.edge))
    }

    /// Incoming edges of `v` as fully materialised [`Edge`] values.
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = Edge> + '_ {
        self.adjacency
            .incoming(v)
            .iter()
            .filter_map(move |entry| self.edge(entry.edge))
    }

    /// Iterate over all live edges between `src` and `dst` (parallel edges
    /// preserved) without allocating. This is the non-tree verification hot
    /// path of the enumerator — prefer it over
    /// [`StreamingGraph::edges_between`] everywhere the result is consumed
    /// immediately.
    #[inline]
    pub fn edges_between_iter(
        &self,
        src: VertexId,
        dst: VertexId,
    ) -> impl Iterator<Item = Edge> + '_ {
        self.adjacency
            .outgoing(src)
            .iter()
            .filter(move |entry| entry.neighbor == dst)
            .filter_map(|entry| self.edge(entry.edge))
    }

    /// Like [`StreamingGraph::edges_between_iter`], but scans whichever
    /// adjacency side is smaller — `outgoing(src)` or `incoming(dst)` — so a
    /// hub endpoint on one side does not force a long scan when the other
    /// endpoint has few edges. Yields the same edge set; the order follows
    /// the chosen side's adjacency order (callers that need the fixed
    /// outgoing order keep using `edges_between_iter`).
    pub fn edges_between_iter_balanced(
        &self,
        src: VertexId,
        dst: VertexId,
    ) -> impl Iterator<Item = Edge> + '_ {
        let out = self.adjacency.outgoing(src);
        let inc = self.adjacency.incoming(dst);
        let (entries, other) = if out.len() <= inc.len() {
            (out, dst)
        } else {
            (inc, src)
        };
        entries
            .iter()
            .filter(move |entry| entry.neighbor == other)
            .filter_map(|entry| self.edge(entry.edge))
    }

    /// All live edges between `src` and `dst`, materialised. Convenience
    /// wrapper over [`StreamingGraph::edges_between_iter`] for callers that
    /// need an owned list.
    pub fn edges_between(&self, src: VertexId, dst: VertexId) -> Vec<Edge> {
        self.edges_between_iter(src, dst).collect()
    }

    /// Out-degree of `v` (live parallel edges counted individually).
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.adjacency.out_degree(v)
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.adjacency.in_degree(v)
    }

    /// Count of outgoing live edges of `v` carrying `label` (rule f2).
    pub fn out_label_count(&self, v: VertexId, label: EdgeLabel) -> usize {
        self.out_edges(v).filter(|e| e.label.matches(label)).count()
    }

    /// Count of incoming live edges of `v` carrying `label` (rule f2).
    pub fn in_label_count(&self, v: VertexId, label: EdgeLabel) -> usize {
        self.in_edges(v).filter(|e| e.label.matches(label)).count()
    }

    /// Count of distinct out-neighbours of `v` whose vertex label is
    /// `neighbor_label` (rule f3). Allocation-free once a thread's scratch is
    /// warm — this runs once per affected vertex per batch.
    pub fn out_neighbor_label_count(&self, v: VertexId, neighbor_label: VertexLabel) -> usize {
        count_distinct(
            self.out_edges(v)
                .map(|e| e.dst)
                .filter(|&n| self.vertex_label(n).matches(neighbor_label)),
        )
    }

    /// Count of distinct in-neighbours of `v` whose vertex label is
    /// `neighbor_label` (rule f3). Allocation-free once a thread's scratch is
    /// warm.
    pub fn in_neighbor_label_count(&self, v: VertexId, neighbor_label: VertexLabel) -> usize {
        count_distinct(
            self.in_edges(v)
                .map(|e| e.src)
                .filter(|&n| self.vertex_label(n).matches(neighbor_label)),
        )
    }

    /// Retained pre-optimisation implementation of
    /// [`StreamingGraph::out_neighbor_label_count`]: allocates a fresh `Vec`
    /// per call. Kept for the `hot_path_gate` wall-clock A/B only.
    pub fn out_neighbor_label_count_baseline(
        &self,
        v: VertexId,
        neighbor_label: VertexLabel,
    ) -> usize {
        let mut seen: Vec<VertexId> = self
            .out_edges(v)
            .map(|e| e.dst)
            .filter(|&n| self.vertex_label(n).matches(neighbor_label))
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Retained pre-optimisation implementation of
    /// [`StreamingGraph::in_neighbor_label_count`]: allocates a fresh `Vec`
    /// per call. Kept for the `hot_path_gate` wall-clock A/B only.
    pub fn in_neighbor_label_count_baseline(
        &self,
        v: VertexId,
        neighbor_label: VertexLabel,
    ) -> usize {
        let mut seen: Vec<VertexId> = self
            .in_edges(v)
            .map(|e| e.src)
            .filter(|&n| self.vertex_label(n).matches(neighbor_label))
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Iterate over every live edge in the graph.
    pub fn live_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edges.iter().enumerate().filter_map(|(i, record)| {
            if record.alive {
                Some(Edge::from_record(EdgeId(i as u32), record))
            } else {
                None
            }
        })
    }

    /// Iterate over every vertex id ever touched.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.adjacency.len() as u32).map(VertexId)
    }

    /// Vertices that currently have at least one live incident edge.
    pub fn active_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.adjacency
            .iter()
            .filter(|(_, adj)| adj.degree() > 0)
            .map(|(v, _)| v)
    }

    /// Drop every edge, placeholder and parked slot while keeping vertex
    /// labels. This is the "periodic reset" of Section VII-D that discards the
    /// cumulative index and restarts from the current point in the stream.
    pub fn reset_edges(&mut self) {
        let vertex_count = self.adjacency.len();
        self.adjacency = AdjacencyTable::new();
        if vertex_count > 0 {
            self.adjacency
                .ensure_vertex(VertexId(vertex_count as u32 - 1));
        }
        self.edges.clear();
        // Keep the attribute-name interner: matchers pre-resolve AttrKeys at
        // query-registration time and those keys must survive a reset.
        self.edge_attrs.clear_all_retaining_keys();
        self.recycler.clear();
        self.stats.live_edges = 0;
        self.stats.edge_placeholders = 0;
    }

    /// Timestamp of the oldest live edge, if any. Used by sliding-window
    /// eviction.
    pub fn oldest_live_timestamp(&self) -> Option<Timestamp> {
        self.live_edges().map(|e| e.timestamp).min()
    }

    /// Collect ids of live edges whose timestamp is strictly older than
    /// `cutoff`. Used by the sliding-window stream to build deletion batches.
    pub fn edges_older_than(&self, cutoff: Timestamp) -> Vec<EdgeId> {
        self.live_edges()
            .filter(|e| e.timestamp < cutoff)
            .map(|e| e.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u32, d: u32, l: u16) -> EdgeTriple {
        EdgeTriple::new(VertexId(s), VertexId(d), EdgeLabel(l))
    }

    #[test]
    fn insert_assigns_sequential_ids() {
        let mut g = StreamingGraph::new();
        assert_eq!(g.insert_edge(t(0, 1, 0)), EdgeId(0));
        assert_eq!(g.insert_edge(t(1, 2, 0)), EdgeId(1));
        assert_eq!(g.insert_edge(t(0, 1, 5)), EdgeId(2));
        assert_eq!(g.live_edge_count(), 3);
        assert_eq!(g.placeholder_count(), 3);
        assert_eq!(g.vertex_count(), 3);
    }

    #[test]
    fn parallel_edges_have_distinct_ids() {
        let mut g = StreamingGraph::new();
        let a = g.insert_edge(t(0, 1, 0));
        let b = g.insert_edge(t(0, 1, 0));
        assert_ne!(a, b);
        assert_eq!(g.edges_between(VertexId(0), VertexId(1)).len(), 2);
    }

    #[test]
    fn delete_then_insert_recycles_slot() {
        // Mirrors the paper's example: after (v1, v5) id=3 is deleted, a later
        // insertion (v1, v9) reuses id 3.
        let mut g = StreamingGraph::new();
        for _ in 0..3 {
            g.insert_edge(t(1, 5, 0));
        }
        let deleted = g.delete_edge(EdgeId(1)).unwrap();
        assert_eq!(deleted.src, VertexId(1));
        let reused = g.insert_edge(t(1, 9, 0));
        assert_eq!(reused, EdgeId(1));
        assert_eq!(g.placeholder_count(), 3);
        assert_eq!(g.stats().recycled_insertions, 1);
        assert_eq!(g.edge(EdgeId(1)).unwrap().dst, VertexId(9));
    }

    #[test]
    fn recycling_disabled_grows_placeholders() {
        let mut g = StreamingGraph::with_config(GraphConfig {
            recycle_edge_ids: false,
        });
        let a = g.insert_edge(t(0, 1, 0));
        g.delete_edge(a).unwrap();
        let b = g.insert_edge(t(0, 2, 0));
        assert_ne!(a, b);
        assert_eq!(g.placeholder_count(), 2);
        assert_eq!(g.stats().recycled_insertions, 0);
    }

    #[test]
    fn delete_matching_removes_latest_instance() {
        let mut g = StreamingGraph::new();
        let e0 = g.insert_edge(EdgeTriple::with_timestamp(
            VertexId(0),
            VertexId(1),
            EdgeLabel(0),
            Timestamp(10),
        ));
        let e1 = g.insert_edge(EdgeTriple::with_timestamp(
            VertexId(0),
            VertexId(1),
            EdgeLabel(0),
            Timestamp(20),
        ));
        let removed = g
            .delete_matching(VertexId(0), VertexId(1), EdgeLabel(0))
            .unwrap();
        assert_eq!(removed.id, e1);
        assert!(g.is_alive(e0));
        assert!(!g.is_alive(e1));
    }

    #[test]
    fn delete_matching_missing_edge_errors() {
        let mut g = StreamingGraph::new();
        g.insert_edge(t(0, 1, 0));
        let err = g.delete_matching(VertexId(0), VertexId(1), EdgeLabel(7));
        assert!(matches!(err, Err(GraphError::NoMatchingEdge(..))));
        let err = g.delete_matching(VertexId(5), VertexId(6), EdgeLabel(0));
        assert!(matches!(err, Err(GraphError::NoMatchingEdge(..))));
    }

    #[test]
    fn double_delete_errors() {
        let mut g = StreamingGraph::new();
        let e = g.insert_edge(t(0, 1, 0));
        g.delete_edge(e).unwrap();
        assert_eq!(g.delete_edge(e), Err(GraphError::DeadEdge(e)));
        assert_eq!(
            g.delete_edge(EdgeId(99)),
            Err(GraphError::UnknownEdge(EdgeId(99)))
        );
    }

    #[test]
    fn label_counts_for_filtering_rules() {
        let mut g = StreamingGraph::new();
        g.set_vertex_label(VertexId(1), VertexLabel(1));
        g.set_vertex_label(VertexId(2), VertexLabel(1));
        g.set_vertex_label(VertexId(3), VertexLabel(2));
        g.insert_edge(t(0, 1, 0));
        g.insert_edge(t(0, 2, 0));
        g.insert_edge(t(0, 3, 1));
        g.insert_edge(t(0, 1, 0)); // parallel edge
        assert_eq!(g.out_label_count(VertexId(0), EdgeLabel(0)), 3);
        assert_eq!(g.out_label_count(VertexId(0), EdgeLabel(1)), 1);
        assert_eq!(g.out_neighbor_label_count(VertexId(0), VertexLabel(1)), 2);
        assert_eq!(g.out_neighbor_label_count(VertexId(0), VertexLabel(2)), 1);
        assert_eq!(g.in_label_count(VertexId(1), EdgeLabel(0)), 2);
        assert_eq!(
            g.in_neighbor_label_count(VertexId(1), crate::ids::WILDCARD_VERTEX_LABEL),
            1
        );
    }

    #[test]
    fn live_edges_skips_deleted_slots() {
        let mut g = StreamingGraph::new();
        let a = g.insert_edge(t(0, 1, 0));
        let b = g.insert_edge(t(1, 2, 0));
        g.delete_edge(a).unwrap();
        let live: Vec<EdgeId> = g.live_edges().map(|e| e.id).collect();
        assert_eq!(live, vec![b]);
    }

    #[test]
    fn reset_clears_edges_but_not_vertex_labels() {
        let mut g = StreamingGraph::new();
        g.set_vertex_label(VertexId(0), VertexLabel(3));
        g.insert_edge(t(0, 1, 0));
        g.reset_edges();
        assert_eq!(g.live_edge_count(), 0);
        assert_eq!(g.placeholder_count(), 0);
        assert_eq!(g.vertex_label(VertexId(0)), VertexLabel(3));
        // Graph remains usable after the reset.
        let e = g.insert_edge(t(0, 1, 0));
        assert_eq!(e, EdgeId(0));
    }

    #[test]
    fn window_eviction_helpers() {
        let mut g = StreamingGraph::new();
        for ts in [5u64, 10, 15, 20] {
            g.insert_edge(EdgeTriple::with_timestamp(
                VertexId(0),
                VertexId(1),
                EdgeLabel(0),
                Timestamp(ts),
            ));
        }
        assert_eq!(g.oldest_live_timestamp(), Some(Timestamp(5)));
        let old = g.edges_older_than(Timestamp(15));
        assert_eq!(old.len(), 2);
        for id in old {
            g.delete_edge(id).unwrap();
        }
        assert_eq!(g.oldest_live_timestamp(), Some(Timestamp(15)));
    }
}
