//! Edge records and direction helpers.
//!
//! Every streamed event becomes an [`EdgeRecord`] addressed by its
//! [`EdgeId`]. A record keeps the endpoints, the edge label and the event
//! timestamp; attribute payloads beyond the label live in the
//! [`crate::attributes`] store so that the hot record stays small.

use crate::ids::{EdgeId, EdgeLabel, Timestamp, VertexId};
use serde::{Deserialize, Serialize};

/// Direction of an adjacency entry relative to the owning vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// The owning vertex is the source of the edge.
    Outgoing,
    /// The owning vertex is the destination of the edge.
    Incoming,
}

impl Direction {
    /// The opposite direction.
    #[inline]
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Outgoing => Direction::Incoming,
            Direction::Incoming => Direction::Outgoing,
        }
    }
}

/// A lightweight (source, destination, label) triple as it appears on the
/// wire, before an id is assigned. Timestamps default to zero for datasets
/// without temporal information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EdgeTriple {
    /// Source endpoint.
    pub src: VertexId,
    /// Destination endpoint.
    pub dst: VertexId,
    /// Edge label (relationship type / protocol / activity).
    pub label: EdgeLabel,
    /// Event timestamp.
    pub timestamp: Timestamp,
}

impl EdgeTriple {
    /// Construct a triple with timestamp zero.
    pub fn new(src: VertexId, dst: VertexId, label: EdgeLabel) -> Self {
        EdgeTriple {
            src,
            dst,
            label,
            timestamp: Timestamp(0),
        }
    }

    /// Construct a triple with an explicit timestamp.
    pub fn with_timestamp(
        src: VertexId,
        dst: VertexId,
        label: EdgeLabel,
        timestamp: Timestamp,
    ) -> Self {
        EdgeTriple {
            src,
            dst,
            label,
            timestamp,
        }
    }
}

/// The materialised record of a live (or recycled) data-graph edge.
///
/// `alive` is false while the slot sits on the free list waiting to be
/// recycled; the rest of the fields then describe the *previous* occupant and
/// must not be interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeRecord {
    /// Source endpoint.
    pub src: VertexId,
    /// Destination endpoint.
    pub dst: VertexId,
    /// Edge label.
    pub label: EdgeLabel,
    /// Event timestamp of the insertion that created this occupancy.
    pub timestamp: Timestamp,
    /// Whether the slot currently holds a live edge.
    pub alive: bool,
}

impl EdgeRecord {
    /// Create a live record from a triple.
    pub fn from_triple(triple: EdgeTriple) -> Self {
        EdgeRecord {
            src: triple.src,
            dst: triple.dst,
            label: triple.label,
            timestamp: triple.timestamp,
            alive: true,
        }
    }

    /// View the record back as a triple (ignores `alive`).
    pub fn as_triple(&self) -> EdgeTriple {
        EdgeTriple {
            src: self.src,
            dst: self.dst,
            label: self.label,
            timestamp: self.timestamp,
        }
    }

    /// The endpoint of the edge on the given side.
    #[inline]
    pub fn endpoint(&self, direction: Direction) -> VertexId {
        match direction {
            Direction::Outgoing => self.src,
            Direction::Incoming => self.dst,
        }
    }
}

/// A fully identified data-graph edge: id plus record. This is the unit the
/// matcher passes around as "(v_p, v) with id edgeId" in the paper's prose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Unique edge identifier.
    pub id: EdgeId,
    /// Source endpoint.
    pub src: VertexId,
    /// Destination endpoint.
    pub dst: VertexId,
    /// Edge label.
    pub label: EdgeLabel,
    /// Event timestamp.
    pub timestamp: Timestamp,
}

impl Edge {
    /// Assemble an [`Edge`] from an id and its record.
    pub fn from_record(id: EdgeId, record: &EdgeRecord) -> Self {
        Edge {
            id,
            src: record.src,
            dst: record.dst,
            label: record.label,
            timestamp: record.timestamp,
        }
    }

    /// The endpoint opposite to `v`; `None` if `v` is not an endpoint.
    pub fn other_endpoint(&self, v: VertexId) -> Option<VertexId> {
        if self.src == v {
            Some(self.dst)
        } else if self.dst == v {
            Some(self.src)
        } else {
            None
        }
    }

    /// Whether the edge is a self loop.
    #[inline]
    pub fn is_loop(&self) -> bool {
        self.src == self.dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triple(s: u32, d: u32, l: u16) -> EdgeTriple {
        EdgeTriple::new(VertexId(s), VertexId(d), EdgeLabel(l))
    }

    #[test]
    fn direction_reverse_is_involution() {
        assert_eq!(Direction::Outgoing.reverse(), Direction::Incoming);
        assert_eq!(Direction::Incoming.reverse().reverse(), Direction::Incoming);
    }

    #[test]
    fn record_roundtrips_triple() {
        let t = EdgeTriple::with_timestamp(VertexId(1), VertexId(2), EdgeLabel(3), Timestamp(99));
        let r = EdgeRecord::from_triple(t);
        assert!(r.alive);
        assert_eq!(r.as_triple(), t);
        assert_eq!(r.endpoint(Direction::Outgoing), VertexId(1));
        assert_eq!(r.endpoint(Direction::Incoming), VertexId(2));
    }

    #[test]
    fn edge_other_endpoint() {
        let r = EdgeRecord::from_triple(triple(4, 7, 0));
        let e = Edge::from_record(EdgeId(12), &r);
        assert_eq!(e.other_endpoint(VertexId(4)), Some(VertexId(7)));
        assert_eq!(e.other_endpoint(VertexId(7)), Some(VertexId(4)));
        assert_eq!(e.other_endpoint(VertexId(9)), None);
        assert!(!e.is_loop());
    }

    #[test]
    fn self_loop_detection() {
        let r = EdgeRecord::from_triple(triple(5, 5, 1));
        let e = Edge::from_record(EdgeId(0), &r);
        assert!(e.is_loop());
        assert_eq!(e.other_endpoint(VertexId(5)), Some(VertexId(5)));
    }
}
