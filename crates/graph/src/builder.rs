//! Bulk loading helpers for constructing graphs from edge lists.

use crate::edge::EdgeTriple;
use crate::ids::{EdgeId, EdgeLabel, Timestamp, VertexId, VertexLabel};
use crate::multigraph::{GraphConfig, StreamingGraph};

/// Fluent builder that assembles a [`StreamingGraph`] from vertex labels and
/// edge triples. Primarily used by tests, examples and the dataset
/// generators.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    config: GraphConfig,
    vertex_labels: Vec<(VertexId, VertexLabel)>,
    edges: Vec<EdgeTriple>,
}

impl GraphBuilder {
    /// Start an empty builder with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the graph configuration.
    pub fn config(mut self, config: GraphConfig) -> Self {
        self.config = config;
        self
    }

    /// Assign a label to a vertex.
    pub fn vertex(mut self, v: u32, label: u16) -> Self {
        self.vertex_labels.push((VertexId(v), VertexLabel(label)));
        self
    }

    /// Add an edge with label and implicit timestamp 0.
    pub fn edge(mut self, src: u32, dst: u32, label: u16) -> Self {
        self.edges.push(EdgeTriple::new(
            VertexId(src),
            VertexId(dst),
            EdgeLabel(label),
        ));
        self
    }

    /// Add an edge with an explicit timestamp.
    pub fn timed_edge(mut self, src: u32, dst: u32, label: u16, ts: u64) -> Self {
        self.edges.push(EdgeTriple::with_timestamp(
            VertexId(src),
            VertexId(dst),
            EdgeLabel(label),
            Timestamp(ts),
        ));
        self
    }

    /// Materialise the graph. Edge ids are assigned in insertion order, so
    /// the i-th `edge()` call receives `EdgeId(i)`.
    pub fn build(self) -> StreamingGraph {
        let mut graph = StreamingGraph::with_config(self.config);
        for (v, label) in self.vertex_labels {
            graph.set_vertex_label(v, label);
        }
        for triple in self.edges {
            graph.insert_edge(triple);
        }
        graph
    }

    /// Materialise the graph and also return the assigned edge ids in
    /// insertion order.
    pub fn build_with_ids(self) -> (StreamingGraph, Vec<EdgeId>) {
        let mut graph = StreamingGraph::with_config(self.config);
        for (v, label) in self.vertex_labels {
            graph.set_vertex_label(v, label);
        }
        let ids = self
            .edges
            .into_iter()
            .map(|triple| graph.insert_edge(triple))
            .collect();
        (graph, ids)
    }
}

/// Build the running example of Figure 1: the data-graph snapshot `G` at time
/// `t` with ten vertices (`v0`..`v9`) and the thirteen initial edges listed
/// in Figure 1(a). Vertex labels follow the letters in the figure
/// (A=0, B=1, C=2, D=3, E=4, F=5), assigned so that the snapshot contains
/// exactly the two isomorphic embeddings of the example query that Section
/// II-B walks through (they differ only in the match of `(u2, u6)`:
/// `(v4, v8)` vs `(v4, v0)`).
///
/// The returned edge ids match the `eId` column of Figure 1(a), which makes
/// the paper's worked examples directly checkable in tests.
pub fn paper_example_graph() -> StreamingGraph {
    GraphBuilder::new()
        .vertex(0, 0) // A
        .vertex(1, 0) // A
        .vertex(2, 1) // B
        .vertex(3, 1) // B
        .vertex(4, 2) // C
        .vertex(5, 4) // E
        .vertex(6, 5) // F
        .vertex(7, 3) // D
        .vertex(8, 0) // A
        .vertex(9, 5) // F
        // eId 0..12 — the "existing edges" of Figure 1(a).
        .edge(4, 1, 0) // 0
        .edge(1, 3, 0) // 1
        .edge(4, 0, 0) // 2
        .edge(1, 5, 0) // 3
        .edge(3, 7, 1) // 4  (v3, v7, 1) — also appears as id 6 in the figure; one instance here
        .edge(0, 5, 0) // 5
        .edge(3, 6, 1) // 6
        .edge(2, 7, 1) // 7
        .edge(2, 6, 1) // 8
        .edge(4, 9, 3) // 9
        .edge(4, 5, 2) // 10
        .edge(4, 8, 0) // 11
        .edge(1, 9, 0) // 12
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_ids_in_insertion_order() {
        let (graph, ids) = GraphBuilder::new()
            .vertex(0, 1)
            .vertex(1, 2)
            .edge(0, 1, 5)
            .edge(1, 0, 6)
            .build_with_ids();
        assert_eq!(ids, vec![EdgeId(0), EdgeId(1)]);
        assert_eq!(graph.vertex_label(VertexId(0)), VertexLabel(1));
        assert_eq!(graph.edge(EdgeId(1)).unwrap().label, EdgeLabel(6));
    }

    #[test]
    fn paper_example_graph_has_expected_shape() {
        let g = paper_example_graph();
        assert_eq!(g.vertex_count(), 10);
        assert_eq!(g.live_edge_count(), 13);
        // v4 has out-edges to v1, v0, v9, v5, v8 -> out degree 5.
        assert_eq!(g.out_degree(VertexId(4)), 5);
        // v5 receives edges from v1, v0, v4.
        assert_eq!(g.in_degree(VertexId(5)), 3);
    }

    #[test]
    fn timed_edges_keep_timestamps() {
        let g = GraphBuilder::new().timed_edge(0, 1, 0, 42).build();
        assert_eq!(g.edge(EdgeId(0)).unwrap().timestamp, Timestamp(42));
    }
}
