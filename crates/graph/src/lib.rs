//! # mnemonic-graph
//!
//! Streaming multigraph substrate for the Mnemonic subgraph matching system
//! (Bhattarai & Huang, IPDPS 2022).
//!
//! The crate provides the data-management layer the paper's matcher sits on:
//!
//! * [`StreamingGraph`] — an adjacency-list
//!   directed multigraph where every edge instance carries a unique
//!   [`EdgeId`], with O(1) insertion/deletion and edge-id
//!   recycling so the placeholder count stays non-monotonic,
//! * id-indexed [attribute stores](attributes) for vertex/edge labels and
//!   long-tail attributes (attribute names interned to dense
//!   [`AttrKey`]s so hot-path lookups never hash a string),
//! * [`DenseBitSet`] — a generation-stamped bitset over the dense id spaces,
//!   replacing hashed membership sets on the batch hot path,
//! * an append-only [transactional edge log](edge_log) plus a FIFO
//!   [spill manager](spill) implementing the paper's external-memory tier,
//! * a paged, cache-bounded [storage] tier — fixed-size checksummed pages,
//!   a second-chance [`PageCache`] with pin/unpin and write-back, and the
//!   delta-varint-compressed [`PagedEdgeLog`] spill backend,
//! * [builders](builder) for assembling graphs in tests, examples and the
//!   synthetic dataset generators.

#![warn(missing_docs)]

pub mod adjacency;
pub mod attributes;
pub mod bitset;
pub mod builder;
pub mod edge;
pub mod edge_log;
pub mod ids;
pub mod multigraph;
pub mod profile;
pub mod recycle;
pub mod spill;
pub mod stats;
pub mod storage;

pub use adjacency::{AdjEntry, AdjacencyTable, VertexAdjacency};
pub use attributes::{AttrKey, AttrValue, EdgeAttributeStore, VertexAttributeStore};
pub use bitset::{AndBits, DenseBitSet, SetBits};
pub use builder::{paper_example_graph, GraphBuilder};
pub use edge::{Direction, Edge, EdgeRecord, EdgeTriple};
pub use edge_log::{EdgeLog, EdgeLogStats, LogFetchIter, LogRecord, LogScanIter};
pub use ids::{
    EdgeId, EdgeLabel, QueryEdgeId, QueryVertexId, Timestamp, VertexId, VertexLabel,
    WILDCARD_EDGE_LABEL, WILDCARD_VERTEX_LABEL,
};
pub use multigraph::{GraphConfig, GraphError, StreamingGraph};
pub use profile::{LabelCounter, NeighborhoodProfile};
pub use recycle::EdgeRecycler;
pub use spill::{SpillConfig, SpillManager, SpillStats};
pub use stats::GraphStats;
pub use storage::{
    PageCache, PageCacheStats, PageManager, PagedEdgeLog, PagedLogStats, StorageBackend,
    StorageConfig,
};
