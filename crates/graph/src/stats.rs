//! Graph-level statistics used by the memory-consumption experiments
//! (Figure 17) and by general instrumentation.

use crate::storage::PageCacheStats;
use serde::{Deserialize, Serialize};

/// Counters describing the life of a [`crate::multigraph::StreamingGraph`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Edges currently alive.
    pub live_edges: u64,
    /// Total number of edge *placeholders* allocated so far, i.e. the length
    /// of the edge table. Without recycling this grows with every insertion;
    /// with recycling it only grows when no parked slot is available. This is
    /// exactly the y-axis of Figure 17.
    pub edge_placeholders: u64,
    /// Total insertions ever applied.
    pub total_insertions: u64,
    /// Total deletions ever applied.
    pub total_deletions: u64,
    /// Insertions that reused a recycled slot.
    pub recycled_insertions: u64,
    /// Number of vertices ever touched.
    pub vertices: u64,
    /// Page-cache counters of the paged storage tier. All zero when the
    /// engine runs fully in memory (the default); populated by sessions
    /// configured with a paged [`crate::storage::StorageConfig`].
    pub page_cache: PageCacheStats,
}

impl GraphStats {
    /// Placeholders that would exist if recycling were disabled (one per
    /// insertion ever made). Lets a single run report both curves of
    /// Figure 17.
    pub fn placeholders_without_reclaiming(&self) -> u64 {
        self.total_insertions
    }

    /// Fraction of insertions served from the free list.
    pub fn recycle_ratio(&self) -> f64 {
        if self.total_insertions == 0 {
            0.0
        } else {
            self.recycled_insertions as f64 / self.total_insertions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycle_ratio_handles_zero_insertions() {
        let stats = GraphStats::default();
        assert_eq!(stats.recycle_ratio(), 0.0);
    }

    #[test]
    fn without_reclaiming_counts_every_insert() {
        let stats = GraphStats {
            live_edges: 10,
            edge_placeholders: 12,
            total_insertions: 30,
            total_deletions: 20,
            recycled_insertions: 18,
            vertices: 5,
            page_cache: PageCacheStats::default(),
        };
        assert_eq!(stats.placeholders_without_reclaiming(), 30);
        assert!((stats.recycle_ratio() - 0.6).abs() < 1e-9);
    }
}
