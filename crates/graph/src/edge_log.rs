//! Append-only transactional edge log — the disk tier of the substrate.
//!
//! Section IV-A ("External memory support") backs up edges and their DEBI
//! rows to disk using transactional edge logs in the style of LiveGraph, so
//! that "the adjacency list of a given node can be fetched in a single
//! transaction". We reproduce the property that matters to Mnemonic: each
//! spilled edge is written once as a fixed-size binary record, and a per
//! vertex offset index lets the matcher fetch all spilled edges of a vertex
//! with one sequential scan over the log segment list for that vertex.
//!
//! The log is deliberately simple — no compaction, no concurrency control —
//! because the spill path is FIFO (old edges only) and read-mostly.

use crate::edge::Edge;
use crate::ids::{EdgeId, EdgeLabel, Timestamp, VertexId};
use bytes::{Buf, BufMut, BytesMut};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Size in bytes of one serialised edge record in the log.
pub const LOG_RECORD_BYTES: usize = 4 /*edge id*/ + 4 /*src*/ + 4 /*dst*/ + 2 /*label*/ + 8 /*ts*/ + 8 /*debi row*/;

/// One record as stored in the log: the edge plus its DEBI row at spill time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogRecord {
    /// The spilled edge.
    pub edge: Edge,
    /// The DEBI bitmap row of the edge at the time it was spilled (up to 64
    /// query-tree edges; the in-memory DEBI uses the same width).
    pub debi_row: u64,
}

impl LogRecord {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.edge.id.0);
        buf.put_u32_le(self.edge.src.0);
        buf.put_u32_le(self.edge.dst.0);
        buf.put_u16_le(self.edge.label.0);
        buf.put_u64_le(self.edge.timestamp.0);
        buf.put_u64_le(self.debi_row);
    }

    fn decode(mut buf: &[u8]) -> LogRecord {
        let id = EdgeId(buf.get_u32_le());
        let src = VertexId(buf.get_u32_le());
        let dst = VertexId(buf.get_u32_le());
        let label = EdgeLabel(buf.get_u16_le());
        let timestamp = Timestamp(buf.get_u64_le());
        let debi_row = buf.get_u64_le();
        LogRecord {
            edge: Edge {
                id,
                src,
                dst,
                label,
                timestamp,
            },
            debi_row,
        }
    }
}

/// Statistics describing the on-disk footprint of the log.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EdgeLogStats {
    /// Records appended over the lifetime of the log.
    pub records_written: u64,
    /// Records fetched back from disk.
    pub records_read: u64,
    /// Bytes currently occupied by the log file.
    pub bytes_on_disk: u64,
    /// Number of fetch transactions (per-vertex reads).
    pub fetch_transactions: u64,
}

/// Append-only edge log with a per-source-vertex offset index.
///
/// The offset indexes are dense vectors keyed by the raw vertex id (vertex
/// ids are contiguous from zero), so the spill path's index maintenance
/// never hashes on the per-edge hot path.
#[derive(Debug)]
pub struct EdgeLog {
    path: PathBuf,
    file: File,
    /// Byte offsets of every record whose *source* vertex is the index.
    by_src: Vec<Vec<u64>>,
    /// Byte offsets of every record whose *destination* vertex is the index.
    by_dst: Vec<Vec<u64>>,
    next_offset: u64,
    stats: EdgeLogStats,
}

/// Push `offset` onto the dense per-vertex offset list, growing the table to
/// cover `v`.
fn push_offset(table: &mut Vec<Vec<u64>>, v: VertexId, offset: u64) {
    if v.index() >= table.len() {
        table.resize_with(v.index() + 1, Vec::new);
    }
    table[v.index()].push(offset);
}

impl EdgeLog {
    /// Create (or truncate) a log file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .read(true)
            .truncate(true)
            .open(&path)?;
        Ok(EdgeLog {
            path,
            file,
            by_src: Vec::new(),
            by_dst: Vec::new(),
            next_offset: 0,
            stats: EdgeLogStats::default(),
        })
    }

    /// Create a log file in a fresh temporary location under the system temp
    /// directory. Useful for tests and benches.
    pub fn create_temp(tag: &str) -> std::io::Result<Self> {
        let mut path = std::env::temp_dir();
        let unique = format!(
            "mnemonic-edgelog-{}-{}-{}.bin",
            tag,
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        );
        path.push(unique);
        Self::create(path)
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current statistics.
    pub fn stats(&self) -> EdgeLogStats {
        self.stats
    }

    /// Number of records ever appended.
    pub fn len(&self) -> u64 {
        self.stats.records_written
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.stats.records_written == 0
    }

    /// Append a batch of records in one write transaction. Returns the number
    /// of records written.
    pub fn append_batch(&mut self, records: &[LogRecord]) -> std::io::Result<usize> {
        if records.is_empty() {
            return Ok(0);
        }
        let mut buf = BytesMut::with_capacity(records.len() * LOG_RECORD_BYTES);
        for record in records {
            push_offset(&mut self.by_src, record.edge.src, self.next_offset);
            push_offset(&mut self.by_dst, record.edge.dst, self.next_offset);
            record.encode(&mut buf);
            self.next_offset += LOG_RECORD_BYTES as u64;
        }
        self.file.seek(SeekFrom::End(0))?;
        self.file.write_all(&buf)?;
        self.stats.records_written += records.len() as u64;
        self.stats.bytes_on_disk = self.next_offset;
        Ok(records.len())
    }

    /// Stream every spilled record whose source vertex is `v` — the
    /// "adjacency list in a single transaction" operation of the paper —
    /// without materialising the `Vec` of records.
    pub fn fetch_outgoing_iter(&mut self, v: VertexId) -> LogFetchIter<'_> {
        self.stats.fetch_transactions += 1;
        let offsets = self.by_src.get(v.index()).map(Vec::as_slice).unwrap_or(&[]);
        LogFetchIter {
            file: &mut self.file,
            stats: &mut self.stats,
            offsets: offsets.iter(),
        }
    }

    /// Stream every spilled record whose destination vertex is `v`.
    pub fn fetch_incoming_iter(&mut self, v: VertexId) -> LogFetchIter<'_> {
        self.stats.fetch_transactions += 1;
        let offsets = self.by_dst.get(v.index()).map(Vec::as_slice).unwrap_or(&[]);
        LogFetchIter {
            file: &mut self.file,
            stats: &mut self.stats,
            offsets: offsets.iter(),
        }
    }

    /// Fetch every spilled record whose source vertex is `v`, collected.
    /// Prefer [`EdgeLog::fetch_outgoing_iter`] on paths that only walk the
    /// records once.
    pub fn fetch_outgoing(&mut self, v: VertexId) -> std::io::Result<Vec<LogRecord>> {
        self.fetch_outgoing_iter(v).collect()
    }

    /// Fetch every spilled record whose destination vertex is `v`, collected.
    pub fn fetch_incoming(&mut self, v: VertexId) -> std::io::Result<Vec<LogRecord>> {
        self.fetch_incoming_iter(v).collect()
    }

    /// Stream the whole log in append order with a bounded read buffer —
    /// one sequential pass, no whole-file `read_to_end`.
    pub fn scan_iter(&mut self) -> LogScanIter<'_> {
        let pending_err = self.file.seek(SeekFrom::Start(0)).err();
        LogScanIter {
            file: &mut self.file,
            stats: &mut self.stats,
            remaining: self.next_offset / LOG_RECORD_BYTES as u64,
            buf: Vec::new(),
            pos: 0,
            pending_err,
        }
    }

    /// Read back the whole log in append order, collected. Prefer
    /// [`EdgeLog::scan_iter`] on paths that only walk the records once.
    pub fn scan_all(&mut self) -> std::io::Result<Vec<LogRecord>> {
        self.scan_iter().collect()
    }

    /// Delete the backing file. The log must not be used afterwards.
    pub fn destroy(self) -> std::io::Result<()> {
        let path = self.path.clone();
        drop(self);
        std::fs::remove_file(path)
    }
}

/// Positioned single-record read, shared by the streaming iterators.
fn read_record_at(file: &mut File, offset: u64) -> std::io::Result<LogRecord> {
    let mut raw = [0u8; LOG_RECORD_BYTES];
    file.seek(SeekFrom::Start(offset))?;
    file.read_exact(&mut raw)?;
    Ok(LogRecord::decode(&raw))
}

/// Streaming per-vertex fetch over an [`EdgeLog`]: yields one record per
/// indexed offset, reading them one at a time instead of collecting a
/// `Vec<LogRecord>` up front. Created by [`EdgeLog::fetch_outgoing_iter`] /
/// [`EdgeLog::fetch_incoming_iter`].
#[derive(Debug)]
pub struct LogFetchIter<'a> {
    file: &'a mut File,
    stats: &'a mut EdgeLogStats,
    offsets: std::slice::Iter<'a, u64>,
}

impl Iterator for LogFetchIter<'_> {
    type Item = std::io::Result<LogRecord>;

    fn next(&mut self) -> Option<std::io::Result<LogRecord>> {
        let &offset = self.offsets.next()?;
        Some(read_record_at(self.file, offset).inspect(|_| {
            self.stats.records_read += 1;
        }))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.offsets.size_hint()
    }
}

/// Streaming whole-log scan in append order with a bounded (256-record) read
/// buffer. Created by [`EdgeLog::scan_iter`].
#[derive(Debug)]
pub struct LogScanIter<'a> {
    file: &'a mut File,
    stats: &'a mut EdgeLogStats,
    remaining: u64,
    buf: Vec<u8>,
    pos: usize,
    pending_err: Option<std::io::Error>,
}

/// Records fetched per refill of the scan buffer.
const SCAN_CHUNK_RECORDS: usize = 256;

impl Iterator for LogScanIter<'_> {
    type Item = std::io::Result<LogRecord>;

    fn next(&mut self) -> Option<std::io::Result<LogRecord>> {
        if let Some(err) = self.pending_err.take() {
            self.remaining = 0;
            return Some(Err(err));
        }
        if self.remaining == 0 {
            return None;
        }
        if self.pos + LOG_RECORD_BYTES > self.buf.len() {
            let want = (self.remaining as usize).min(SCAN_CHUNK_RECORDS) * LOG_RECORD_BYTES;
            self.buf.resize(want, 0);
            if let Err(err) = self.file.read_exact(&mut self.buf) {
                self.remaining = 0;
                return Some(Err(err));
            }
            self.pos = 0;
        }
        let record = LogRecord::decode(&self.buf[self.pos..self.pos + LOG_RECORD_BYTES]);
        self.pos += LOG_RECORD_BYTES;
        self.remaining -= 1;
        self.stats.records_read += 1;
        Some(Ok(record))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u32, s: u32, d: u32, l: u16, ts: u64, row: u64) -> LogRecord {
        LogRecord {
            edge: Edge {
                id: EdgeId(id),
                src: VertexId(s),
                dst: VertexId(d),
                label: EdgeLabel(l),
                timestamp: Timestamp(ts),
            },
            debi_row: row,
        }
    }

    #[test]
    fn record_encoding_roundtrips() {
        let r = rec(7, 1, 2, 3, 99, 0b1011);
        let mut buf = BytesMut::new();
        r.encode(&mut buf);
        assert_eq!(buf.len(), LOG_RECORD_BYTES);
        assert_eq!(LogRecord::decode(&buf), r);
    }

    #[test]
    fn append_and_fetch_by_vertex() {
        let mut log = EdgeLog::create_temp("fetch").unwrap();
        log.append_batch(&[
            rec(0, 1, 2, 0, 10, 1),
            rec(1, 1, 3, 0, 11, 2),
            rec(2, 4, 1, 1, 12, 4),
        ])
        .unwrap();
        let out = log.fetch_outgoing(VertexId(1)).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].edge.dst, VertexId(2));
        assert_eq!(out[1].edge.dst, VertexId(3));
        let inc = log.fetch_incoming(VertexId(1)).unwrap();
        assert_eq!(inc.len(), 1);
        assert_eq!(inc[0].edge.src, VertexId(4));
        assert!(log.fetch_outgoing(VertexId(9)).unwrap().is_empty());
        assert_eq!(log.stats().records_written, 3);
        log.destroy().unwrap();
    }

    #[test]
    fn scan_all_preserves_append_order() {
        let mut log = EdgeLog::create_temp("scan").unwrap();
        let records = vec![
            rec(0, 0, 1, 0, 1, 0),
            rec(1, 1, 2, 1, 2, 7),
            rec(2, 2, 0, 2, 3, 9),
        ];
        log.append_batch(&records[..2]).unwrap();
        log.append_batch(&records[2..]).unwrap();
        assert_eq!(log.scan_all().unwrap(), records);
        assert_eq!(log.stats().bytes_on_disk, 3 * LOG_RECORD_BYTES as u64);
        log.destroy().unwrap();
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut log = EdgeLog::create_temp("empty").unwrap();
        assert_eq!(log.append_batch(&[]).unwrap(), 0);
        assert!(log.is_empty());
        log.destroy().unwrap();
    }
}
