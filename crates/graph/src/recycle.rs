//! Edge-id recycling (Section IV-A, "Memory recycling").
//!
//! When an edge is deleted Mnemonic remembers its id on a per-source-vertex
//! free list. The next insertion out of the same vertex reuses that id — and
//! with it the DEBI row and attribute slot — instead of growing the edge
//! table. This is what makes the index size *non-monotonic*: placeholders
//! grow only when a vertex inserts more concurrent edges than it ever had
//! before. The recycler can be disabled to reproduce the "without
//! reclaiming" curve of Figure 17.

use crate::ids::{EdgeId, VertexId};
use serde::{Deserialize, Serialize};

/// Free-list based edge-id recycler.
///
/// The free lists are indexed *densely* by source vertex id — vertex ids are
/// contiguous from zero, so `acquire`/`release` are a bounds-checked vector
/// index instead of a hashed probe. `insert_edge` sits on the per-event hot
/// path, which is why this table is not a `HashMap`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EdgeRecycler {
    /// Per-source-vertex free lists of ids whose previous occupant was
    /// deleted, indexed by the raw vertex id. LIFO so the most recently
    /// freed slot is reused first, which keeps the touched id range compact.
    per_vertex: Vec<Vec<EdgeId>>,
    /// Whether recycling is enabled at all.
    enabled: bool,
    /// Number of ids currently parked on free lists.
    free_count: usize,
    /// Total number of successful reuses over the lifetime of the graph.
    reuse_count: u64,
}

impl Default for EdgeRecycler {
    fn default() -> Self {
        Self::new(true)
    }
}

impl EdgeRecycler {
    /// Create a recycler; `enabled = false` turns every `acquire` into a miss
    /// so the caller always allocates fresh slots.
    pub fn new(enabled: bool) -> Self {
        EdgeRecycler {
            per_vertex: Vec::new(),
            enabled,
            free_count: 0,
            reuse_count: 0,
        }
    }

    /// Whether recycling is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Park the id of a deleted edge whose source vertex was `src`.
    pub fn release(&mut self, src: VertexId, id: EdgeId) {
        if !self.enabled {
            return;
        }
        if src.index() >= self.per_vertex.len() {
            self.per_vertex.resize_with(src.index() + 1, Vec::new);
        }
        self.per_vertex[src.index()].push(id);
        self.free_count += 1;
    }

    /// Try to obtain a recycled id for a new edge out of `src`. Falls back to
    /// `None` when the vertex has no parked ids (or recycling is disabled),
    /// in which case the caller must allocate a fresh slot.
    pub fn acquire(&mut self, src: VertexId) -> Option<EdgeId> {
        if !self.enabled {
            return None;
        }
        let id = self.per_vertex.get_mut(src.index())?.pop()?;
        self.free_count -= 1;
        self.reuse_count += 1;
        Some(id)
    }

    /// Number of ids currently waiting for reuse.
    pub fn free_slots(&self) -> usize {
        self.free_count
    }

    /// Lifetime count of successful reuses.
    pub fn reuses(&self) -> u64 {
        self.reuse_count
    }

    /// Drop all parked ids (used by the periodic-reset path: after a reset the
    /// edge table is rebuilt from scratch, so stale ids must not leak in).
    /// The per-vertex list capacity is retained so post-reset ingest stays
    /// allocation-free.
    pub fn clear(&mut self) {
        for list in &mut self.per_vertex {
            list.clear();
        }
        self.free_count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuses_most_recent_free_id_per_vertex() {
        let mut r = EdgeRecycler::new(true);
        r.release(VertexId(1), EdgeId(3));
        r.release(VertexId(1), EdgeId(9));
        r.release(VertexId(2), EdgeId(5));
        assert_eq!(r.free_slots(), 3);
        assert_eq!(r.acquire(VertexId(1)), Some(EdgeId(9)));
        assert_eq!(r.acquire(VertexId(1)), Some(EdgeId(3)));
        assert_eq!(r.acquire(VertexId(1)), None);
        assert_eq!(r.acquire(VertexId(2)), Some(EdgeId(5)));
        assert_eq!(r.free_slots(), 0);
        assert_eq!(r.reuses(), 3);
    }

    #[test]
    fn disabled_recycler_never_returns_ids() {
        let mut r = EdgeRecycler::new(false);
        r.release(VertexId(1), EdgeId(3));
        assert_eq!(r.free_slots(), 0);
        assert_eq!(r.acquire(VertexId(1)), None);
        assert_eq!(r.reuses(), 0);
    }

    #[test]
    fn ids_are_per_source_vertex() {
        // The paper reuses the id of "the last deleted edge of v1" only for a
        // later edge out of v1; another vertex must not steal it.
        let mut r = EdgeRecycler::new(true);
        r.release(VertexId(1), EdgeId(3));
        assert_eq!(r.acquire(VertexId(4)), None);
        assert_eq!(r.acquire(VertexId(1)), Some(EdgeId(3)));
    }

    #[test]
    fn clear_drops_everything() {
        let mut r = EdgeRecycler::new(true);
        r.release(VertexId(1), EdgeId(0));
        r.release(VertexId(2), EdgeId(1));
        r.clear();
        assert_eq!(r.free_slots(), 0);
        assert_eq!(r.acquire(VertexId(1)), None);
    }
}
