//! Strongly-typed identifiers used throughout the Mnemonic workspace.
//!
//! The paper identifies every data-graph edge with a unique `edgeId` so that
//! multiple parallel edges between the same endpoints stay distinguishable
//! (Section IV). Vertices, labels and timestamps get the same newtype
//! treatment so that the different id spaces can never be mixed up by
//! accident.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a data-graph vertex.
///
/// Vertex ids are dense: the substrate allocates them contiguously starting
/// at zero so they can double as indices into side arrays (attribute store,
/// `roots` bit vector, adjacency table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VertexId(pub u32);

/// Identifier of a data-graph edge (the paper's `edgeId`).
///
/// Edge ids are dense as well and are *recycled*: when an edge is deleted its
/// id (and the DEBI row indexed by it) becomes available for a later
/// insertion, which is what keeps the index size non-monotonic (Section IV-A,
/// "Memory recycling").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

/// Label (type) of a vertex, e.g. host / user / process in the LANL data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VertexLabel(pub u16);

/// Label (type) of an edge, e.g. the transport protocol of a NetFlow event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeLabel(pub u16);

/// Event timestamp carried by streamed edges, used by windowed streams and by
/// time-constrained matching.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

/// Identifier of a *query-graph* vertex (`u0`, `u1`, ... in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueryVertexId(pub u16);

/// Identifier of a *query-graph* edge, dense over the query edge set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueryEdgeId(pub u16);

/// A label that matches anything. The example query in Figure 1(e) uses empty
/// labels on every edge; we reserve the maximum raw value for that wildcard.
pub const WILDCARD_EDGE_LABEL: EdgeLabel = EdgeLabel(u16::MAX);
/// Wildcard vertex label: matches any data-vertex label.
pub const WILDCARD_VERTEX_LABEL: VertexLabel = VertexLabel(u16::MAX);

impl VertexId {
    /// The vertex id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The edge id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl QueryVertexId {
    /// The query vertex id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl QueryEdgeId {
    /// The query edge id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl VertexLabel {
    /// Whether this label matches `other` taking the wildcard into account.
    #[inline]
    pub fn matches(self, other: VertexLabel) -> bool {
        self == WILDCARD_VERTEX_LABEL || other == WILDCARD_VERTEX_LABEL || self == other
    }
}

impl EdgeLabel {
    /// Whether this label matches `other` taking the wildcard into account.
    #[inline]
    pub fn matches(self, other: EdgeLabel) -> bool {
        self == WILDCARD_EDGE_LABEL || other == WILDCARD_EDGE_LABEL || self == other
    }
}

impl Timestamp {
    /// Difference to an earlier timestamp, saturating at zero.
    #[inline]
    pub fn saturating_since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for QueryVertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for QueryEdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(raw: u32) -> Self {
        VertexId(raw)
    }
}

impl From<u32> for EdgeId {
    fn from(raw: u32) -> Self {
        EdgeId(raw)
    }
}

impl From<u16> for QueryVertexId {
    fn from(raw: u16) -> Self {
        QueryVertexId(raw)
    }
}

impl From<u64> for Timestamp {
    fn from(raw: u64) -> Self {
        Timestamp(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_index_roundtrip() {
        let v = VertexId(42);
        assert_eq!(v.index(), 42);
        assert_eq!(VertexId::from(42u32), v);
        assert_eq!(format!("{v}"), "v42");
    }

    #[test]
    fn edge_id_ordering_is_numeric() {
        assert!(EdgeId(3) < EdgeId(10));
        assert_eq!(format!("{}", EdgeId(7)), "e7");
    }

    #[test]
    fn wildcard_vertex_label_matches_everything() {
        let a = VertexLabel(1);
        let b = VertexLabel(2);
        assert!(!a.matches(b));
        assert!(a.matches(a));
        assert!(WILDCARD_VERTEX_LABEL.matches(a));
        assert!(a.matches(WILDCARD_VERTEX_LABEL));
    }

    #[test]
    fn wildcard_edge_label_matches_everything() {
        let a = EdgeLabel(4);
        let b = EdgeLabel(9);
        assert!(!a.matches(b));
        assert!(b.matches(b));
        assert!(WILDCARD_EDGE_LABEL.matches(b));
        assert!(b.matches(WILDCARD_EDGE_LABEL));
    }

    #[test]
    fn timestamp_saturating_since() {
        assert_eq!(Timestamp(10).saturating_since(Timestamp(4)), 6);
        assert_eq!(Timestamp(4).saturating_since(Timestamp(10)), 0);
    }

    #[test]
    fn query_ids_display() {
        assert_eq!(format!("{}", QueryVertexId(3)), "u3");
        assert_eq!(format!("{}", QueryEdgeId(5)), "q5");
    }
}
