//! Id-indexed attribute stores for vertices and edges.
//!
//! The paper keeps the graph topology (adjacency lists) separate from the
//! attribute payloads: "The vertex and edge attributes are stored in another
//! data structure indexed by their id" (Section II-A). Labels are the
//! attributes every matcher needs, so they get dedicated dense vectors; any
//! extra per-entity attributes (bytes transferred, port numbers, user names,
//! ...) go into a dense side table keyed by the same id.
//!
//! Attribute *names* are interned: each store maps every distinct name
//! string to a dense [`AttrKey`] once, and per-entity attribute bags are
//! small `(AttrKey, value)` lists. A matcher on the candidacy path
//! pre-resolves its keys at query-registration time
//! ([`VertexAttributeStore::resolve_key`] /
//! [`EdgeAttributeStore::resolve_key`]) and then filters through
//! [`attr_by_key`](EdgeAttributeStore::attr_by_key), which is a vector index
//! plus a short linear scan — no string is hashed per edge.

use crate::ids::{EdgeId, VertexId, VertexLabel, WILDCARD_VERTEX_LABEL};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A single attribute value. Kept deliberately small: the matching variants
/// in the paper only ever compare attributes for (in)equality or order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    /// Signed integer payload (ports, byte counts, ...).
    Int(i64),
    /// Floating point payload (scores, rates, ...).
    Float(f64),
    /// Free-form text payload (user names, process names, ...).
    Text(String),
    /// Boolean flag.
    Bool(bool),
}

impl AttrValue {
    /// The integer payload, if this value is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The text payload, if this value is `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            AttrValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this value is `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Interned attribute name: a dense index into a store's name table.
/// Resolve once at query-registration time, then look attributes up by key
/// on the per-edge hot path without hashing the name string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrKey(pub u32);

/// A named bag of attributes attached to one vertex or edge: a short
/// association list keyed by interned [`AttrKey`]s. Entity attribute bags
/// are tiny (a handful of fields per NetFlow/LANL event), so a linear scan
/// beats any hashed structure and allocates nothing on lookup.
pub type AttrMap = Vec<(AttrKey, AttrValue)>;

/// The attribute-name interner shared by the entities of one store.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
struct KeyInterner {
    /// Name of each key, indexed by the raw [`AttrKey`].
    names: Vec<String>,
    /// Reverse map used only by the string-keyed convenience API and by
    /// interning itself — never on the per-edge path.
    index: HashMap<String, u32>,
}

impl KeyInterner {
    fn intern(&mut self, name: impl Into<String>) -> AttrKey {
        let name = name.into();
        if let Some(&raw) = self.index.get(&name) {
            return AttrKey(raw);
        }
        let raw = self.names.len() as u32;
        self.names.push(name.clone());
        self.index.insert(name, raw);
        AttrKey(raw)
    }

    fn resolve(&self, name: &str) -> Option<AttrKey> {
        self.index.get(name).copied().map(AttrKey)
    }

    fn name(&self, key: AttrKey) -> Option<&str> {
        self.names.get(key.0 as usize).map(String::as_str)
    }
}

/// Dense per-entity attribute bags plus the shared name interner.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
struct AttrTable {
    interner: KeyInterner,
    /// One bag per entity id; empty bags cost one `Vec` header. Entity ids
    /// are dense, so this is direct addressing, not hashing.
    bags: Vec<AttrMap>,
    /// Number of non-empty bags, maintained incrementally so `len()` stays
    /// O(1) like the `HashMap`-backed store it replaced.
    occupied: usize,
}

impl AttrTable {
    fn set(&mut self, id: usize, key: AttrKey, value: AttrValue) {
        if id >= self.bags.len() {
            self.bags.resize_with(id + 1, Vec::new);
        }
        let bag = &mut self.bags[id];
        self.occupied += bag.is_empty() as usize;
        match bag.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => bag.push((key, value)),
        }
    }

    fn get(&self, id: usize, key: AttrKey) -> Option<&AttrValue> {
        self.bags
            .get(id)?
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }

    fn clear_entity(&mut self, id: usize) {
        if let Some(bag) = self.bags.get_mut(id) {
            self.occupied -= (!bag.is_empty()) as usize;
            bag.clear();
        }
    }

    fn clear_all_bags(&mut self) {
        self.bags.clear();
        self.occupied = 0;
    }

    fn occupied(&self) -> usize {
        self.occupied
    }
}

/// Dense vertex-label store plus interned extra attributes.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct VertexAttributeStore {
    labels: Vec<VertexLabel>,
    extra: AttrTable,
}

impl VertexAttributeStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of vertices with a recorded label.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether no vertex has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Set the label of `v`, growing the store with wildcard labels if `v` is
    /// beyond the current bound.
    pub fn set_label(&mut self, v: VertexId, label: VertexLabel) {
        if v.index() >= self.labels.len() {
            self.labels.resize(v.index() + 1, WILDCARD_VERTEX_LABEL);
        }
        self.labels[v.index()] = label;
    }

    /// The label of `v`; vertices never seen get the wildcard label.
    pub fn label(&self, v: VertexId) -> VertexLabel {
        self.labels
            .get(v.index())
            .copied()
            .unwrap_or(WILDCARD_VERTEX_LABEL)
    }

    /// Intern an attribute name, returning its dense key. Idempotent; use at
    /// query-registration time so hot-path lookups can go through
    /// [`VertexAttributeStore::attr_by_key`].
    pub fn intern_key(&mut self, name: impl Into<String>) -> AttrKey {
        self.extra.interner.intern(name)
    }

    /// Resolve an already-interned attribute name without interning it.
    pub fn resolve_key(&self, name: &str) -> Option<AttrKey> {
        self.extra.interner.resolve(name)
    }

    /// The name an [`AttrKey`] was interned from.
    pub fn key_name(&self, key: AttrKey) -> Option<&str> {
        self.extra.interner.name(key)
    }

    /// Attach an extra named attribute to `v`.
    pub fn set_attr(&mut self, v: VertexId, key: impl Into<String>, value: AttrValue) {
        let key = self.intern_key(key);
        self.extra.set(v.index(), key, value);
    }

    /// Read an extra attribute of `v` by name (hashes the name once; use
    /// [`VertexAttributeStore::attr_by_key`] on hot paths).
    pub fn attr(&self, v: VertexId, key: &str) -> Option<&AttrValue> {
        self.extra.get(v.index(), self.resolve_key(key)?)
    }

    /// Read an extra attribute of `v` by pre-resolved key: a vector index
    /// plus a short linear scan, no hashing.
    #[inline]
    pub fn attr_by_key(&self, v: VertexId, key: AttrKey) -> Option<&AttrValue> {
        self.extra.get(v.index(), key)
    }
}

/// Interned extra-attribute store for edges. Edge labels themselves live
/// inside [`crate::edge::EdgeRecord`] because every matcher touches them on
/// the hot path; this table only holds the optional long-tail attributes.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct EdgeAttributeStore {
    extra: AttrTable,
}

impl EdgeAttributeStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of edges currently carrying extra attributes.
    pub fn len(&self) -> usize {
        self.extra.occupied()
    }

    /// Whether no edge carries extra attributes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Intern an attribute name, returning its dense key. Idempotent; use at
    /// query-registration time so hot-path lookups can go through
    /// [`EdgeAttributeStore::attr_by_key`].
    pub fn intern_key(&mut self, name: impl Into<String>) -> AttrKey {
        self.extra.interner.intern(name)
    }

    /// Resolve an already-interned attribute name without interning it.
    pub fn resolve_key(&self, name: &str) -> Option<AttrKey> {
        self.extra.interner.resolve(name)
    }

    /// The name an [`AttrKey`] was interned from.
    pub fn key_name(&self, key: AttrKey) -> Option<&str> {
        self.extra.interner.name(key)
    }

    /// Attach an extra named attribute to edge `e`.
    pub fn set_attr(&mut self, e: EdgeId, key: impl Into<String>, value: AttrValue) {
        let key = self.intern_key(key);
        self.extra.set(e.index(), key, value);
    }

    /// Read an extra attribute of edge `e` by name (hashes the name once;
    /// use [`EdgeAttributeStore::attr_by_key`] on hot paths).
    pub fn attr(&self, e: EdgeId, key: &str) -> Option<&AttrValue> {
        self.extra.get(e.index(), self.resolve_key(key)?)
    }

    /// Read an extra attribute of edge `e` by pre-resolved key: a vector
    /// index plus a short linear scan, no hashing — the candidacy-path
    /// contract.
    #[inline]
    pub fn attr_by_key(&self, e: EdgeId, key: AttrKey) -> Option<&AttrValue> {
        self.extra.get(e.index(), key)
    }

    /// Drop every extra attribute of edge `e`. Called when an edge slot is
    /// recycled so the next occupant does not inherit stale attributes; the
    /// bag's capacity is retained for the recycled occupant.
    pub fn clear_edge(&mut self, e: EdgeId) {
        self.extra.clear_entity(e.index());
    }

    /// Drop every edge's attributes while **keeping the key interner**:
    /// [`AttrKey`]s resolved before the clear stay valid afterwards. This is
    /// the periodic-reset path — matchers cache keys at query-registration
    /// time, and a reset must not silently re-number them.
    pub fn clear_all_retaining_keys(&mut self) {
        self.extra.clear_all_bags();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_labels_grow_with_wildcard_default() {
        let mut store = VertexAttributeStore::new();
        store.set_label(VertexId(3), VertexLabel(7));
        assert_eq!(store.label(VertexId(3)), VertexLabel(7));
        assert_eq!(store.label(VertexId(1)), WILDCARD_VERTEX_LABEL);
        assert_eq!(store.label(VertexId(100)), WILDCARD_VERTEX_LABEL);
        assert_eq!(store.len(), 4);
    }

    #[test]
    fn vertex_extra_attributes() {
        let mut store = VertexAttributeStore::new();
        store.set_attr(VertexId(2), "hostname", AttrValue::Text("alpha".into()));
        store.set_attr(VertexId(2), "compromised", AttrValue::Bool(true));
        assert_eq!(
            store
                .attr(VertexId(2), "hostname")
                .and_then(|a| a.as_text()),
            Some("alpha")
        );
        assert_eq!(
            store
                .attr(VertexId(2), "compromised")
                .and_then(|a| a.as_bool()),
            Some(true)
        );
        assert!(store.attr(VertexId(2), "missing").is_none());
        assert!(store.attr(VertexId(9), "hostname").is_none());
    }

    #[test]
    fn edge_attributes_cleared_on_recycle() {
        let mut store = EdgeAttributeStore::new();
        store.set_attr(EdgeId(5), "bytes", AttrValue::Int(1024));
        assert_eq!(
            store.attr(EdgeId(5), "bytes").and_then(|a| a.as_int()),
            Some(1024)
        );
        store.clear_edge(EdgeId(5));
        assert!(store.attr(EdgeId(5), "bytes").is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn interned_keys_resolve_without_hashing_on_lookup() {
        let mut store = EdgeAttributeStore::new();
        let bytes = store.intern_key("bytes");
        assert_eq!(store.intern_key("bytes"), bytes, "interning is idempotent");
        assert_eq!(store.resolve_key("bytes"), Some(bytes));
        assert_eq!(store.resolve_key("port"), None);
        assert_eq!(store.key_name(bytes), Some("bytes"));

        store.set_attr(EdgeId(3), "bytes", AttrValue::Int(9));
        assert_eq!(
            store.attr_by_key(EdgeId(3), bytes).and_then(|a| a.as_int()),
            Some(9)
        );
        assert!(store.attr_by_key(EdgeId(4), bytes).is_none());
        // Overwriting in place keeps one entry per key.
        store.set_attr(EdgeId(3), "bytes", AttrValue::Int(10));
        assert_eq!(
            store.attr_by_key(EdgeId(3), bytes).and_then(|a| a.as_int()),
            Some(10)
        );
    }

    #[test]
    fn reset_clear_keeps_interned_keys_stable() {
        let mut store = EdgeAttributeStore::new();
        let bytes = store.intern_key("bytes");
        let port = store.intern_key("port");
        store.set_attr(EdgeId(0), "bytes", AttrValue::Int(1));
        store.clear_all_retaining_keys();
        assert!(store.is_empty());
        assert!(store.attr_by_key(EdgeId(0), bytes).is_none());
        // Keys resolved before the clear keep naming the same attribute:
        // re-interning in a different order must not renumber them.
        assert_eq!(store.intern_key("port"), port);
        assert_eq!(store.intern_key("bytes"), bytes);
        store.set_attr(EdgeId(3), "port", AttrValue::Int(443));
        assert_eq!(
            store.attr_by_key(EdgeId(3), port).and_then(|a| a.as_int()),
            Some(443)
        );
        assert!(store.attr_by_key(EdgeId(3), bytes).is_none());
    }

    #[test]
    fn attr_value_accessors() {
        assert_eq!(AttrValue::Int(3).as_int(), Some(3));
        assert_eq!(AttrValue::Float(1.5).as_int(), None);
        assert_eq!(AttrValue::Text("x".into()).as_text(), Some("x"));
        assert_eq!(AttrValue::Bool(false).as_bool(), Some(false));
    }
}
