//! Id-indexed attribute stores for vertices and edges.
//!
//! The paper keeps the graph topology (adjacency lists) separate from the
//! attribute payloads: "The vertex and edge attributes are stored in another
//! data structure indexed by their id" (Section II-A). Labels are the
//! attributes every matcher needs, so they get dedicated dense vectors; any
//! extra per-entity attributes (bytes transferred, port numbers, user names,
//! ...) go into a sparse side table keyed by the same id.

use crate::ids::{EdgeId, VertexId, VertexLabel, WILDCARD_VERTEX_LABEL};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A single attribute value. Kept deliberately small: the matching variants
/// in the paper only ever compare attributes for (in)equality or order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    /// Signed integer payload (ports, byte counts, ...).
    Int(i64),
    /// Floating point payload (scores, rates, ...).
    Float(f64),
    /// Free-form text payload (user names, process names, ...).
    Text(String),
    /// Boolean flag.
    Bool(bool),
}

impl AttrValue {
    /// The integer payload, if this value is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The text payload, if this value is `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            AttrValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this value is `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A named bag of attributes attached to one vertex or edge.
pub type AttrMap = HashMap<String, AttrValue>;

/// Dense vertex-label store plus sparse extra attributes.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct VertexAttributeStore {
    labels: Vec<VertexLabel>,
    extra: HashMap<u32, AttrMap>,
}

impl VertexAttributeStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of vertices with a recorded label.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether no vertex has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Set the label of `v`, growing the store with wildcard labels if `v` is
    /// beyond the current bound.
    pub fn set_label(&mut self, v: VertexId, label: VertexLabel) {
        if v.index() >= self.labels.len() {
            self.labels.resize(v.index() + 1, WILDCARD_VERTEX_LABEL);
        }
        self.labels[v.index()] = label;
    }

    /// The label of `v`; vertices never seen get the wildcard label.
    pub fn label(&self, v: VertexId) -> VertexLabel {
        self.labels
            .get(v.index())
            .copied()
            .unwrap_or(WILDCARD_VERTEX_LABEL)
    }

    /// Attach an extra named attribute to `v`.
    pub fn set_attr(&mut self, v: VertexId, key: impl Into<String>, value: AttrValue) {
        self.extra.entry(v.0).or_default().insert(key.into(), value);
    }

    /// Read an extra attribute of `v`.
    pub fn attr(&self, v: VertexId, key: &str) -> Option<&AttrValue> {
        self.extra.get(&v.0).and_then(|m| m.get(key))
    }
}

/// Sparse extra-attribute store for edges. Edge labels themselves live inside
/// [`crate::edge::EdgeRecord`] because every matcher touches them on the hot
/// path; this table only holds the optional long-tail attributes.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct EdgeAttributeStore {
    extra: HashMap<u32, AttrMap>,
}

impl EdgeAttributeStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of edges carrying extra attributes.
    pub fn len(&self) -> usize {
        self.extra.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.extra.is_empty()
    }

    /// Attach an extra named attribute to edge `e`.
    pub fn set_attr(&mut self, e: EdgeId, key: impl Into<String>, value: AttrValue) {
        self.extra.entry(e.0).or_default().insert(key.into(), value);
    }

    /// Read an extra attribute of edge `e`.
    pub fn attr(&self, e: EdgeId, key: &str) -> Option<&AttrValue> {
        self.extra.get(&e.0).and_then(|m| m.get(key))
    }

    /// Drop every extra attribute of edge `e`. Called when an edge slot is
    /// recycled so the next occupant does not inherit stale attributes.
    pub fn clear_edge(&mut self, e: EdgeId) {
        self.extra.remove(&e.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_labels_grow_with_wildcard_default() {
        let mut store = VertexAttributeStore::new();
        store.set_label(VertexId(3), VertexLabel(7));
        assert_eq!(store.label(VertexId(3)), VertexLabel(7));
        assert_eq!(store.label(VertexId(1)), WILDCARD_VERTEX_LABEL);
        assert_eq!(store.label(VertexId(100)), WILDCARD_VERTEX_LABEL);
        assert_eq!(store.len(), 4);
    }

    #[test]
    fn vertex_extra_attributes() {
        let mut store = VertexAttributeStore::new();
        store.set_attr(VertexId(2), "hostname", AttrValue::Text("alpha".into()));
        store.set_attr(VertexId(2), "compromised", AttrValue::Bool(true));
        assert_eq!(
            store
                .attr(VertexId(2), "hostname")
                .and_then(|a| a.as_text()),
            Some("alpha")
        );
        assert_eq!(
            store
                .attr(VertexId(2), "compromised")
                .and_then(|a| a.as_bool()),
            Some(true)
        );
        assert!(store.attr(VertexId(2), "missing").is_none());
        assert!(store.attr(VertexId(9), "hostname").is_none());
    }

    #[test]
    fn edge_attributes_cleared_on_recycle() {
        let mut store = EdgeAttributeStore::new();
        store.set_attr(EdgeId(5), "bytes", AttrValue::Int(1024));
        assert_eq!(
            store.attr(EdgeId(5), "bytes").and_then(|a| a.as_int()),
            Some(1024)
        );
        store.clear_edge(EdgeId(5));
        assert!(store.attr(EdgeId(5), "bytes").is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn attr_value_accessors() {
        assert_eq!(AttrValue::Int(3).as_int(), Some(3));
        assert_eq!(AttrValue::Float(1.5).as_int(), None);
        assert_eq!(AttrValue::Text("x".into()).as_text(), Some("x"));
        assert_eq!(AttrValue::Bool(false).as_bool(), Some(false));
    }
}
