//! Dense bitsets over recycled id spaces, plus the word-parallel kernel
//! layer used by the hot path.
//!
//! Every hot identifier in Mnemonic — `EdgeId`, `VertexId` — is *dense*: the
//! substrate allocates ids contiguously from zero and recycles the slots of
//! deleted edges (Section IV-A). That density is the whole reason DEBI can be
//! a flat bitmap, yet the batch pipeline used to re-derive it through
//! SipHash'd `HashSet` membership tests. [`DenseBitSet`] restores the O(1)
//! direct-addressed contract for the transient per-batch sets (frontier
//! dedup, batch-edge masking, deletion resolution):
//!
//! * `insert` / `contains` / `remove` are a word index plus a bit mask — no
//!   hashing, no probing;
//! * `clear` is O(1): every word carries a generation stamp, and clearing
//!   just bumps the set's current generation, so a recycled set (or a
//!   recycled id slot) costs nothing to reset;
//! * iteration visits set bits in ascending id order, which keeps every
//!   consumer deterministic — the property the differential and determinism
//!   suites pin down.
//!
//! # Word layout invariants
//!
//! The kernels below depend on three invariants that every mutating method
//! preserves:
//!
//! 1. **64 indices per word.** Index `i` lives at bit `i % 64` of word
//!    `i / 64`; set algebra over two sets is therefore plain `u64` bitwise
//!    algebra over their word arrays, 64 memberships per instruction.
//! 2. **Stale words read as zero.** `words[wi]` is only meaningful when
//!    `stamps[wi] == epoch`; every kernel normalises through the
//!    stamp-checked private `word` accessor, so a
//!    generation-cleared set participates in word algebra exactly as an
//!    all-zero set would.
//! 3. **`len` is the popcount.** Kernels that write words maintain `len`
//!    with `count_ones` on the words they touch, never by per-bit probing.
//!
//! Decoding a word back to indices uses `trailing_zeros` plus the
//! `bits &= bits - 1` clear-lowest-set-bit step, so sparse words cost one
//! iteration per *set bit*, not per index.
//!
//! # When `iter_and` beats materialising
//!
//! [`DenseBitSet::intersect_into`] writes the intersection into a third set;
//! [`DenseBitSet::iter_and`] streams the same bits without writing anything.
//! Materialise when the result is consumed more than once (or must outlive
//! the inputs); stream with `iter_and` when the intersection is consumed
//! exactly once in ascending order — it touches each input word once and
//! never allocates or dirties an output cache line. Counting-only consumers
//! should prefer [`DenseBitSet::and_not_count`]-style popcount kernels,
//! which skip the bit decode entirely.
//!
//! Correctness under id recycling: a recycled `EdgeId` is *the same index*
//! as its dead predecessor, so a bitset keyed by edge id never aliases two
//! live edges — at most one occupant of a slot is alive at a time, and the
//! per-batch sets are rebuilt (or generation-cleared) before the next batch
//! can observe a reused slot. See `crates/core/src/frontier.rs` for the
//! pipeline-level argument.

use serde::{Deserialize, Serialize};

/// A growable bitset over dense `usize` indices with generation-stamped O(1)
/// clearing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DenseBitSet {
    /// Bit words; `words[i]` is only meaningful when `stamps[i] == epoch`.
    words: Vec<u64>,
    /// Generation stamp of each word; a stale stamp reads as an all-zero
    /// word.
    stamps: Vec<u32>,
    /// Current generation. Bumped by [`DenseBitSet::clear`].
    epoch: u32,
    /// Number of set bits.
    len: usize,
}

impl Default for DenseBitSet {
    fn default() -> Self {
        Self::new()
    }
}

impl DenseBitSet {
    /// Create an empty set.
    pub fn new() -> Self {
        DenseBitSet {
            words: Vec::new(),
            stamps: Vec::new(),
            epoch: 1,
            len: 0,
        }
    }

    /// Create an empty set covering indices below `bound` without further
    /// growth.
    pub fn with_capacity(bound: usize) -> Self {
        let mut set = Self::new();
        set.ensure(bound);
        set
    }

    /// Make sure indices below `bound` are addressable without reallocation.
    pub fn ensure(&mut self, bound: usize) {
        let words = bound.div_ceil(64);
        if words > self.words.len() {
            self.words.resize(words, 0);
            self.stamps.resize(words, 0);
        }
    }

    /// Number of set bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value of word `wi` under the current generation.
    #[inline]
    fn word(&self, wi: usize) -> u64 {
        match self.stamps.get(wi) {
            Some(&stamp) if stamp == self.epoch => self.words[wi],
            _ => 0,
        }
    }

    /// Whether `idx` is in the set.
    #[inline]
    pub fn contains(&self, idx: usize) -> bool {
        self.word(idx / 64) & (1u64 << (idx % 64)) != 0
    }

    /// Insert `idx`, growing the set if needed. Returns `true` when the bit
    /// was not set before (the `HashSet::insert` contract).
    #[inline]
    pub fn insert(&mut self, idx: usize) -> bool {
        let wi = idx / 64;
        if wi >= self.words.len() {
            self.ensure(idx + 1);
        }
        if self.stamps[wi] != self.epoch {
            self.stamps[wi] = self.epoch;
            self.words[wi] = 0;
        }
        let mask = 1u64 << (idx % 64);
        let fresh = self.words[wi] & mask == 0;
        self.words[wi] |= mask;
        self.len += fresh as usize;
        fresh
    }

    /// Remove `idx`. Returns `true` when the bit was set.
    #[inline]
    pub fn remove(&mut self, idx: usize) -> bool {
        let wi = idx / 64;
        if self.word(wi) & (1u64 << (idx % 64)) == 0 {
            return false;
        }
        self.words[wi] &= !(1u64 << (idx % 64));
        self.len -= 1;
        true
    }

    /// Remove every bit in O(1) by bumping the generation; the capacity (and
    /// therefore the zero-allocation steady state) is retained. On the rare
    /// generation wrap-around the words are hard-cleared once.
    pub fn clear(&mut self) {
        self.len = 0;
        if self.epoch == u32::MAX {
            self.stamps.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Iterate over the set indices in ascending order.
    ///
    /// The iterator walks words, not indices: zero and generation-stale
    /// words are skipped in one comparison each, and set bits are decoded
    /// with `trailing_zeros`, so a sparse set over a large capacity costs
    /// O(words + set bits) rather than O(capacity).
    pub fn iter(&self) -> SetBits<'_> {
        SetBits {
            set: self,
            wi: 0,
            bits: self.word(0),
        }
    }

    /// Write `self & other` into `out` (word-at-a-time; `out` is cleared
    /// first, capacity retained).
    pub fn intersect_into(&self, other: &DenseBitSet, out: &mut DenseBitSet) {
        out.clear();
        let n = self.words.len().min(other.words.len());
        out.ensure(n * 64);
        let mut len = 0usize;
        for wi in 0..n {
            let w = self.word(wi) & other.word(wi);
            if w != 0 {
                out.words[wi] = w;
                out.stamps[wi] = out.epoch;
                len += w.count_ones() as usize;
            }
        }
        out.len = len;
    }

    /// Write `self | other` into `out` (word-at-a-time; `out` is cleared
    /// first, capacity retained).
    pub fn union_into(&self, other: &DenseBitSet, out: &mut DenseBitSet) {
        out.clear();
        let n = self.words.len().max(other.words.len());
        out.ensure(n * 64);
        let mut len = 0usize;
        for wi in 0..n {
            let w = self.word(wi) | other.word(wi);
            if w != 0 {
                out.words[wi] = w;
                out.stamps[wi] = out.epoch;
                len += w.count_ones() as usize;
            }
        }
        out.len = len;
    }

    /// Write `self & !other` into `out` (word-at-a-time; `out` is cleared
    /// first, capacity retained).
    pub fn difference_into(&self, other: &DenseBitSet, out: &mut DenseBitSet) {
        out.clear();
        let n = self.words.len();
        out.ensure(n * 64);
        let mut len = 0usize;
        for wi in 0..n {
            let w = self.word(wi) & !other.word(wi);
            if w != 0 {
                out.words[wi] = w;
                out.stamps[wi] = out.epoch;
                len += w.count_ones() as usize;
            }
        }
        out.len = len;
    }

    /// `|self & !other|` — the number of bits of `self` missing from
    /// `other`, by pure word popcount (no bit decode, no allocation).
    ///
    /// `and_not_count(other) == 0` is the word-parallel subset test.
    pub fn and_not_count(&self, other: &DenseBitSet) -> usize {
        let mut count = 0usize;
        for wi in 0..self.words.len() {
            let w = self.word(wi) & !other.word(wi);
            count += w.count_ones() as usize;
        }
        count
    }

    /// Iterate `self & other` in ascending order without materialising the
    /// intersection (see the module docs for when this beats
    /// [`DenseBitSet::intersect_into`]).
    pub fn iter_and<'a>(&'a self, other: &'a DenseBitSet) -> AndBits<'a> {
        let n = self.words.len().min(other.words.len());
        AndBits {
            a: self,
            b: other,
            n,
            wi: 0,
            bits: if n == 0 {
                0
            } else {
                self.word(0) & other.word(0)
            },
        }
    }

    /// Merge `other` into `self` in place (`self |= other`), one `u64` word
    /// at a time. Grows `self` as needed; `len` is maintained by popcount of
    /// the newly set bits, and zero words of `other` are skipped without
    /// touching `self`'s words at all.
    pub fn union_with(&mut self, other: &DenseBitSet) {
        let n = other.words.len();
        if n > self.words.len() {
            self.ensure(n * 64);
        }
        for wi in 0..n {
            let ow = other.word(wi);
            if ow == 0 {
                continue;
            }
            let cur = if self.stamps[wi] == self.epoch {
                self.words[wi]
            } else {
                0
            };
            self.len += (ow & !cur).count_ones() as usize;
            self.words[wi] = cur | ow;
            self.stamps[wi] = self.epoch;
        }
    }
}

/// Ascending iterator over the set bits of a [`DenseBitSet`], skipping zero
/// and generation-stale words via bit-scan (`trailing_zeros`).
pub struct SetBits<'a> {
    set: &'a DenseBitSet,
    wi: usize,
    bits: u64,
}

impl Iterator for SetBits<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.bits == 0 {
            self.wi += 1;
            if self.wi >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.word(self.wi);
        }
        let tz = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some(self.wi * 64 + tz)
    }
}

/// Ascending iterator over the intersection of two [`DenseBitSet`]s,
/// produced by [`DenseBitSet::iter_and`]. ANDs one word pair at a time and
/// bit-scans only non-zero products; nothing is materialised.
pub struct AndBits<'a> {
    a: &'a DenseBitSet,
    b: &'a DenseBitSet,
    /// Number of word pairs to visit (`min` of the two word counts).
    n: usize,
    wi: usize,
    bits: u64,
}

impl Iterator for AndBits<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.bits == 0 {
            self.wi += 1;
            if self.wi >= self.n {
                return None;
            }
            self.bits = self.a.word(self.wi) & self.b.word(self.wi);
        }
        let tz = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some(self.wi * 64 + tz)
    }
}

impl FromIterator<usize> for DenseBitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut set = DenseBitSet::new();
        for idx in iter {
            set.insert(idx);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove_roundtrip() {
        let mut set = DenseBitSet::new();
        assert!(set.is_empty());
        assert!(!set.contains(0));
        assert!(set.insert(5));
        assert!(!set.insert(5), "double insert reports already-present");
        assert!(set.insert(64));
        assert!(set.insert(1000));
        assert_eq!(set.len(), 3);
        assert!(set.contains(5) && set.contains(64) && set.contains(1000));
        assert!(!set.contains(6) && !set.contains(63) && !set.contains(65));
        assert!(set.remove(64));
        assert!(!set.remove(64));
        assert_eq!(set.len(), 2);
        assert!(!set.contains(64));
    }

    #[test]
    fn clear_is_generational_and_reusable() {
        let mut set = DenseBitSet::with_capacity(256);
        for i in [0usize, 63, 64, 200] {
            set.insert(i);
        }
        set.clear();
        assert!(set.is_empty());
        for i in [0usize, 63, 64, 200] {
            assert!(!set.contains(i), "bit {i} survived a clear");
        }
        // The cleared set is immediately reusable and stale words do not leak
        // old bits into fresh inserts.
        assert!(set.insert(63));
        assert!(set.contains(63));
        assert!(!set.contains(0));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn iter_is_ascending_and_generation_aware() {
        let mut set = DenseBitSet::new();
        for i in [300usize, 2, 150, 64, 3] {
            set.insert(i);
        }
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![2, 3, 64, 150, 300]);
        set.clear();
        assert_eq!(set.iter().count(), 0);
        set.insert(7);
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn iter_skips_zero_word_runs() {
        let mut set = DenseBitSet::with_capacity(1 << 20);
        set.insert(0);
        set.insert(999_999);
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![0, 999_999]);
    }

    #[test]
    fn epoch_wraparound_hard_clears() {
        let mut set = DenseBitSet::with_capacity(64);
        set.insert(3);
        set.epoch = u32::MAX - 1;
        set.stamps[0] = u32::MAX - 1; // keep bit 3 visible at the forced epoch
        assert!(set.contains(3));
        set.clear(); // epoch -> u32::MAX
        set.insert(9);
        set.clear(); // wrap: hard clear back to epoch 1
        assert_eq!(set.epoch, 1);
        assert!(set.is_empty());
        assert!(!set.contains(3) && !set.contains(9));
        set.insert(3);
        assert!(set.contains(3));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn from_iterator_collects() {
        let set: DenseBitSet = [1usize, 5, 5, 9].into_iter().collect();
        assert_eq!(set.len(), 3);
        assert!(set.contains(1) && set.contains(5) && set.contains(9));
    }

    #[test]
    fn out_of_range_queries_are_false() {
        let set = DenseBitSet::new();
        assert!(!set.contains(10_000));
        let mut set = DenseBitSet::with_capacity(10);
        set.insert(3);
        assert!(!set.contains(9999));
        assert!(!set.remove(9999));
    }

    fn from_indices(indices: &[usize]) -> DenseBitSet {
        indices.iter().copied().collect()
    }

    #[test]
    fn intersect_into_matches_scalar_and_recycles_out() {
        let a = from_indices(&[1, 64, 65, 200, 1000]);
        let b = from_indices(&[0, 64, 200, 999]);
        let mut out = DenseBitSet::new();
        // Pre-dirty `out` to prove intersect_into clears it first.
        out.insert(7);
        a.intersect_into(&b, &mut out);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![64, 200]);
        assert_eq!(out.len(), 2);
        assert!(!out.contains(7));
    }

    #[test]
    fn union_into_covers_unequal_capacities() {
        let a = from_indices(&[1, 63]);
        let b = from_indices(&[64, 1000]);
        let mut out = DenseBitSet::new();
        a.union_into(&b, &mut out);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![1, 63, 64, 1000]);
        assert_eq!(out.len(), 4);
        // Symmetric: the larger set on the left.
        b.union_into(&a, &mut out);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![1, 63, 64, 1000]);
    }

    #[test]
    fn difference_into_and_and_not_count_agree() {
        let a = from_indices(&[1, 64, 65, 200]);
        let b = from_indices(&[64, 200, 999]);
        let mut out = DenseBitSet::new();
        a.difference_into(&b, &mut out);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![1, 65]);
        assert_eq!(a.and_not_count(&b), 2);
        assert_eq!(b.and_not_count(&a), 1);
        // Subset test via and_not_count.
        let sub = from_indices(&[64, 200]);
        assert_eq!(sub.and_not_count(&a), 0);
    }

    #[test]
    fn iter_and_streams_the_intersection() {
        let a = from_indices(&[1, 64, 65, 200, 1000]);
        let b = from_indices(&[0, 64, 200, 999, 1000]);
        assert_eq!(a.iter_and(&b).collect::<Vec<_>>(), vec![64, 200, 1000]);
        assert_eq!(b.iter_and(&a).collect::<Vec<_>>(), vec![64, 200, 1000]);
        let empty = DenseBitSet::new();
        assert_eq!(a.iter_and(&empty).count(), 0);
        assert_eq!(empty.iter_and(&a).count(), 0);
    }

    #[test]
    fn union_with_merges_in_place_and_tracks_len() {
        let mut a = from_indices(&[1, 64]);
        let b = from_indices(&[64, 65, 1000]);
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 64, 65, 1000]);
        assert_eq!(a.len(), 4);
        // Merging again is idempotent.
        a.union_with(&b);
        assert_eq!(a.len(), 4);
        // Merging into a generation-cleared set works off the fresh epoch.
        a.clear();
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![64, 65, 1000]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn kernels_respect_generation_clears_on_inputs() {
        let mut a = from_indices(&[3, 70]);
        let b = from_indices(&[3, 70, 100]);
        a.clear();
        a.insert(100);
        let mut out = DenseBitSet::new();
        a.intersect_into(&b, &mut out);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![100]);
        assert_eq!(a.and_not_count(&b), 0);
        a.union_into(&b, &mut out);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![3, 70, 100]);
    }
}
