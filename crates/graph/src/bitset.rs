//! Dense bitsets over recycled id spaces.
//!
//! Every hot identifier in Mnemonic — `EdgeId`, `VertexId` — is *dense*: the
//! substrate allocates ids contiguously from zero and recycles the slots of
//! deleted edges (Section IV-A). That density is the whole reason DEBI can be
//! a flat bitmap, yet the batch pipeline used to re-derive it through
//! SipHash'd `HashSet` membership tests. [`DenseBitSet`] restores the O(1)
//! direct-addressed contract for the transient per-batch sets (frontier
//! dedup, batch-edge masking, deletion resolution):
//!
//! * `insert` / `contains` / `remove` are a word index plus a bit mask — no
//!   hashing, no probing;
//! * `clear` is O(1): every word carries a generation stamp, and clearing
//!   just bumps the set's current generation, so a recycled set (or a
//!   recycled id slot) costs nothing to reset;
//! * iteration visits set bits in ascending id order, which keeps every
//!   consumer deterministic — the property the differential and determinism
//!   suites pin down.
//!
//! Correctness under id recycling: a recycled `EdgeId` is *the same index*
//! as its dead predecessor, so a bitset keyed by edge id never aliases two
//! live edges — at most one occupant of a slot is alive at a time, and the
//! per-batch sets are rebuilt (or generation-cleared) before the next batch
//! can observe a reused slot. See `crates/core/src/frontier.rs` for the
//! pipeline-level argument.

use serde::{Deserialize, Serialize};

/// A growable bitset over dense `usize` indices with generation-stamped O(1)
/// clearing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DenseBitSet {
    /// Bit words; `words[i]` is only meaningful when `stamps[i] == epoch`.
    words: Vec<u64>,
    /// Generation stamp of each word; a stale stamp reads as an all-zero
    /// word.
    stamps: Vec<u32>,
    /// Current generation. Bumped by [`DenseBitSet::clear`].
    epoch: u32,
    /// Number of set bits.
    len: usize,
}

impl Default for DenseBitSet {
    fn default() -> Self {
        Self::new()
    }
}

impl DenseBitSet {
    /// Create an empty set.
    pub fn new() -> Self {
        DenseBitSet {
            words: Vec::new(),
            stamps: Vec::new(),
            epoch: 1,
            len: 0,
        }
    }

    /// Create an empty set covering indices below `bound` without further
    /// growth.
    pub fn with_capacity(bound: usize) -> Self {
        let mut set = Self::new();
        set.ensure(bound);
        set
    }

    /// Make sure indices below `bound` are addressable without reallocation.
    pub fn ensure(&mut self, bound: usize) {
        let words = bound.div_ceil(64);
        if words > self.words.len() {
            self.words.resize(words, 0);
            self.stamps.resize(words, 0);
        }
    }

    /// Number of set bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value of word `wi` under the current generation.
    #[inline]
    fn word(&self, wi: usize) -> u64 {
        match self.stamps.get(wi) {
            Some(&stamp) if stamp == self.epoch => self.words[wi],
            _ => 0,
        }
    }

    /// Whether `idx` is in the set.
    #[inline]
    pub fn contains(&self, idx: usize) -> bool {
        self.word(idx / 64) & (1u64 << (idx % 64)) != 0
    }

    /// Insert `idx`, growing the set if needed. Returns `true` when the bit
    /// was not set before (the `HashSet::insert` contract).
    #[inline]
    pub fn insert(&mut self, idx: usize) -> bool {
        let wi = idx / 64;
        if wi >= self.words.len() {
            self.ensure(idx + 1);
        }
        if self.stamps[wi] != self.epoch {
            self.stamps[wi] = self.epoch;
            self.words[wi] = 0;
        }
        let mask = 1u64 << (idx % 64);
        let fresh = self.words[wi] & mask == 0;
        self.words[wi] |= mask;
        self.len += fresh as usize;
        fresh
    }

    /// Remove `idx`. Returns `true` when the bit was set.
    #[inline]
    pub fn remove(&mut self, idx: usize) -> bool {
        let wi = idx / 64;
        if self.word(wi) & (1u64 << (idx % 64)) == 0 {
            return false;
        }
        self.words[wi] &= !(1u64 << (idx % 64));
        self.len -= 1;
        true
    }

    /// Remove every bit in O(1) by bumping the generation; the capacity (and
    /// therefore the zero-allocation steady state) is retained. On the rare
    /// generation wrap-around the words are hard-cleared once.
    pub fn clear(&mut self) {
        self.len = 0;
        if self.epoch == u32::MAX {
            self.stamps.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Iterate over the set indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.words.len()).flat_map(move |wi| {
            let mut bits = self.word(wi);
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + tz)
            })
        })
    }
}

impl FromIterator<usize> for DenseBitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut set = DenseBitSet::new();
        for idx in iter {
            set.insert(idx);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove_roundtrip() {
        let mut set = DenseBitSet::new();
        assert!(set.is_empty());
        assert!(!set.contains(0));
        assert!(set.insert(5));
        assert!(!set.insert(5), "double insert reports already-present");
        assert!(set.insert(64));
        assert!(set.insert(1000));
        assert_eq!(set.len(), 3);
        assert!(set.contains(5) && set.contains(64) && set.contains(1000));
        assert!(!set.contains(6) && !set.contains(63) && !set.contains(65));
        assert!(set.remove(64));
        assert!(!set.remove(64));
        assert_eq!(set.len(), 2);
        assert!(!set.contains(64));
    }

    #[test]
    fn clear_is_generational_and_reusable() {
        let mut set = DenseBitSet::with_capacity(256);
        for i in [0usize, 63, 64, 200] {
            set.insert(i);
        }
        set.clear();
        assert!(set.is_empty());
        for i in [0usize, 63, 64, 200] {
            assert!(!set.contains(i), "bit {i} survived a clear");
        }
        // The cleared set is immediately reusable and stale words do not leak
        // old bits into fresh inserts.
        assert!(set.insert(63));
        assert!(set.contains(63));
        assert!(!set.contains(0));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn iter_is_ascending_and_generation_aware() {
        let mut set = DenseBitSet::new();
        for i in [300usize, 2, 150, 64, 3] {
            set.insert(i);
        }
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![2, 3, 64, 150, 300]);
        set.clear();
        assert_eq!(set.iter().count(), 0);
        set.insert(7);
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn epoch_wraparound_hard_clears() {
        let mut set = DenseBitSet::with_capacity(64);
        set.insert(3);
        set.epoch = u32::MAX - 1;
        set.stamps[0] = u32::MAX - 1; // keep bit 3 visible at the forced epoch
        assert!(set.contains(3));
        set.clear(); // epoch -> u32::MAX
        set.insert(9);
        set.clear(); // wrap: hard clear back to epoch 1
        assert_eq!(set.epoch, 1);
        assert!(set.is_empty());
        assert!(!set.contains(3) && !set.contains(9));
        set.insert(3);
        assert!(set.contains(3));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn from_iterator_collects() {
        let set: DenseBitSet = [1usize, 5, 5, 9].into_iter().collect();
        assert_eq!(set.len(), 3);
        assert!(set.contains(1) && set.contains(5) && set.contains(9));
    }

    #[test]
    fn out_of_range_queries_are_false() {
        let set = DenseBitSet::new();
        assert!(!set.contains(10_000));
        let mut set = DenseBitSet::with_capacity(10);
        set.insert(3);
        assert!(!set.contains(9999));
        assert!(!set.remove(9999));
    }
}
