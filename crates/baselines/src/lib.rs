//! # mnemonic-baselines
//!
//! Comparator systems re-implemented from their published descriptions so the
//! Mnemonic evaluation can be reproduced end to end without proprietary
//! binaries:
//!
//! * [`recompute`] — a naive from-scratch matcher used both as the
//!   correctness oracle for differential testing and as the "recompute per
//!   snapshot" baseline,
//! * [`turboflux`] — a TurboFlux-style data-centric, strictly sequential
//!   incremental matcher,
//! * [`ceci`] — a CECI-style static compact embedding cluster index rebuilt
//!   per snapshot,
//! * [`bigjoin`] — a BigJoin-style worst-case-optimal, vertex-at-a-time join
//!   matcher for homomorphisms,
//! * [`matchstore`] — a Li-et-al.-style match-store tree of partially
//!   materialised embeddings for time-constrained matching.

#![warn(missing_docs)]

pub mod bigjoin;
pub mod ceci;
pub mod matchstore;
pub mod recompute;
pub mod turboflux;

pub use bigjoin::{BigJoinLike, BigJoinStats};
pub use ceci::{CeciIndex, CeciLike};
pub use matchstore::{MatchStoreStats, MatchStoreTree};
pub use recompute::{NaiveMatcher, OracleEmbedding, OracleSemantics};
pub use turboflux::{TurboFluxDelta, TurboFluxLike};
