//! TurboFlux-style incremental matcher (Kim et al., SIGMOD 2018), rebuilt
//! from the paper's description for comparison purposes.
//!
//! The defining characteristics replicated here are the ones Mnemonic's
//! evaluation contrasts itself against:
//!
//! * a **data-graph centric index** (the DCG): per data vertex, one state per
//!   query vertex describing whether the vertex can currently act as a match
//!   (our states collapse TurboFlux's NULL/IMPLICIT/EXPLICIT lattice into a
//!   boolean candidacy, which preserves the update pattern),
//! * **strictly sequential, one-edge-at-a-time processing**: every insertion
//!   or deletion triggers its own index update (no shared traversal between
//!   edges of a batch) and its own enumeration pass,
//! * **edge collapsing**: parallel edges between the same endpoints share a
//!   single index entry, so the index cannot distinguish event instances —
//!   the limitation Observation #2 of the Mnemonic paper calls out,
//! * no intra-update parallelism.
//!
//! Because edges are processed one at a time, an embedding is reported when
//! its last edge arrives, so no masking is needed — and none is used, just
//! like the original system.

use mnemonic_graph::edge::EdgeTriple;
use mnemonic_graph::ids::{EdgeId, QueryEdgeId, QueryVertexId, VertexId};
use mnemonic_graph::multigraph::StreamingGraph;
use mnemonic_query::query_graph::QueryGraph;
use mnemonic_stream::event::StreamEvent;

/// Outcome of processing one event.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TurboFluxDelta {
    /// Embeddings that appeared because of this event.
    pub new_embeddings: u64,
    /// Embeddings that disappeared because of this event.
    pub removed_embeddings: u64,
    /// Data vertices whose DCG states were recomputed.
    pub vertices_touched: u64,
}

/// The TurboFlux-style matcher.
pub struct TurboFluxLike {
    graph: StreamingGraph,
    query: QueryGraph,
    /// DCG states: per data vertex, a bitmask over query vertices.
    dcg: Vec<u64>,
    /// Monotonic insertion sequence number per edge id (used to avoid double
    /// counting across the one-edge-at-a-time enumerations).
    seq: Vec<u64>,
    next_seq: u64,
    /// Total events processed.
    events_processed: u64,
    /// Cumulative embeddings reported.
    total_new: u64,
    total_removed: u64,
}

impl TurboFluxLike {
    /// Create a matcher for `query`.
    pub fn new(query: QueryGraph) -> Self {
        assert!(
            query.vertex_count() <= 64,
            "query too large for the DCG bitmask"
        );
        TurboFluxLike {
            graph: StreamingGraph::new(),
            query,
            dcg: Vec::new(),
            seq: Vec::new(),
            next_seq: 0,
            events_processed: 0,
            total_new: 0,
            total_removed: 0,
        }
    }

    /// The underlying data graph.
    pub fn graph(&self) -> &StreamingGraph {
        &self.graph
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Cumulative (new, removed) embedding counts.
    pub fn totals(&self) -> (u64, u64) {
        (self.total_new, self.total_removed)
    }

    fn ensure_dcg(&mut self) {
        while self.dcg.len() < self.graph.vertex_count() {
            self.dcg.push(0);
        }
    }

    fn record_seq(&mut self, id: EdgeId) {
        while self.seq.len() <= id.index() {
            self.seq.push(0);
        }
        self.seq[id.index()] = self.next_seq;
        self.next_seq += 1;
    }

    fn seq_of(&self, id: EdgeId) -> u64 {
        self.seq.get(id.index()).copied().unwrap_or(0)
    }

    /// Whether data vertex `v` can currently act as a match of query vertex
    /// `u`: label compatibility plus one outgoing/incoming edge per query
    /// edge label (the local part of TurboFlux's implicit state).
    fn vertex_state(&self, v: VertexId, u: QueryVertexId) -> bool {
        if !self
            .query
            .vertex_label(u)
            .matches(self.graph.vertex_label(v))
        {
            return false;
        }
        for entry in self.query.outgoing(u) {
            let label = self.query.edge(entry.edge).label;
            if self.graph.out_label_count(v, label) == 0 {
                return false;
            }
        }
        for entry in self.query.incoming(u) {
            let label = self.query.edge(entry.edge).label;
            if self.graph.in_label_count(v, label) == 0 {
                return false;
            }
        }
        true
    }

    /// Recompute the DCG states of `v` and report how many vertices were
    /// touched (the vertex itself).
    fn refresh_vertex(&mut self, v: VertexId) -> u64 {
        let mut mask = 0u64;
        for u in self.query.vertices() {
            if self.vertex_state(v, u) {
                mask |= 1 << u.index();
            }
        }
        self.dcg[v.index()] = mask;
        1
    }

    /// Process a single stream event (strictly sequential).
    pub fn process_event(&mut self, event: &StreamEvent) -> TurboFluxDelta {
        self.events_processed += 1;
        let mut delta = TurboFluxDelta::default();
        if event.is_insert() {
            if event.src_label != mnemonic_graph::ids::WILDCARD_VERTEX_LABEL {
                self.graph.set_vertex_label(event.src, event.src_label);
            }
            if event.dst_label != mnemonic_graph::ids::WILDCARD_VERTEX_LABEL {
                self.graph.set_vertex_label(event.dst, event.dst_label);
            }
            let id = self.graph.insert_edge(EdgeTriple::with_timestamp(
                event.src,
                event.dst,
                event.label,
                event.timestamp,
            ));
            self.record_seq(id);
            self.ensure_dcg();
            // Per-edge index update: the endpoints and their neighbours are
            // refreshed for *every single edge*, with no sharing across a
            // batch — this is the redundancy Mnemonic's unified frontier
            // removes.
            delta.vertices_touched += self.propagate(event.src);
            delta.vertices_touched += self.propagate(event.dst);
            delta.new_embeddings = self.enumerate_with_edge(id, true) as u64;
            self.total_new += delta.new_embeddings;
        } else {
            // Deletion: enumerate disappearing embeddings first, then remove.
            if let Ok(edge) = self
                .graph
                .delete_matching(event.src, event.dst, event.label)
            {
                // Re-insert temporarily? No: enumerate against the state
                // before deletion by re-adding the edge record logically is
                // costly; instead we enumerate before deleting. To keep the
                // single-pass structure we re-insert, enumerate, then delete.
                let id = self.graph.insert_edge(EdgeTriple::with_timestamp(
                    edge.src,
                    edge.dst,
                    edge.label,
                    edge.timestamp,
                ));
                self.record_seq(id);
                self.ensure_dcg();
                delta.removed_embeddings = self.enumerate_with_edge(id, false) as u64;
                let _ = self.graph.delete_edge(id);
                delta.vertices_touched += self.propagate(event.src);
                delta.vertices_touched += self.propagate(event.dst);
                self.total_removed += delta.removed_embeddings;
            }
        }
        delta
    }

    /// Process a whole batch — sequentially, one event at a time.
    pub fn process_batch(&mut self, events: &[StreamEvent]) -> TurboFluxDelta {
        let mut total = TurboFluxDelta::default();
        for event in events {
            let d = self.process_event(event);
            total.new_embeddings += d.new_embeddings;
            total.removed_embeddings += d.removed_embeddings;
            total.vertices_touched += d.vertices_touched;
        }
        total
    }

    /// Load edges without reporting embeddings (initial graph).
    pub fn bootstrap(&mut self, events: &[StreamEvent]) {
        for event in events {
            if event.is_insert() {
                let id = self.graph.insert_edge(EdgeTriple::with_timestamp(
                    event.src,
                    event.dst,
                    event.label,
                    event.timestamp,
                ));
                self.record_seq(id);
            }
        }
        self.ensure_dcg();
        for v in 0..self.graph.vertex_count() as u32 {
            self.refresh_vertex(VertexId(v));
        }
    }

    /// Refresh the DCG around `v` (the vertex and its direct neighbours).
    fn propagate(&mut self, v: VertexId) -> u64 {
        let mut touched = self.refresh_vertex(v);
        let neighbors: Vec<VertexId> = self
            .graph
            .outgoing(v)
            .iter()
            .chain(self.graph.incoming(v))
            .map(|e| e.neighbor)
            .collect();
        for n in neighbors {
            touched += self.refresh_vertex(n);
        }
        touched
    }

    /// Enumerate (count) isomorphic embeddings that use data edge `id`,
    /// trying the edge against every query edge in turn and extending by
    /// backtracking over the remaining query vertices. When
    /// `restrict_to_older` is set (insertions), every other query edge may
    /// only use edges inserted *before* the anchor, which makes each new
    /// embedding counted exactly once across the per-edge enumerations; for
    /// deletions the restriction is dropped (the embedding leaves the graph
    /// with the anchor, so later deletions cannot re-find it).
    fn enumerate_with_edge(&self, id: EdgeId, restrict_to_older: bool) -> usize {
        let Some(edge) = self.graph.edge(id) else {
            return 0;
        };
        let mut count = 0usize;
        for q in self.query.edge_ids() {
            let qe = self.query.edge(q);
            if !qe.label.matches(edge.label) {
                continue;
            }
            if !self.dcg_ok(edge.src, qe.src) || !self.dcg_ok(edge.dst, qe.dst) {
                continue;
            }
            let mut assignment: Vec<Option<VertexId>> = vec![None; self.query.vertex_count()];
            assignment[qe.src.index()] = Some(edge.src);
            if qe.src != qe.dst {
                assignment[qe.dst.index()] = Some(edge.dst);
            } else if edge.src != edge.dst {
                continue;
            }
            count += self.extend(&mut assignment, q, id, restrict_to_older);
        }
        count
    }

    fn dcg_ok(&self, v: VertexId, u: QueryVertexId) -> bool {
        self.dcg
            .get(v.index())
            .map(|m| m & (1 << u.index()) != 0)
            .unwrap_or(false)
    }

    /// Backtracking extension counting complete injective vertex mappings
    /// whose required edges all exist, where the query edge `anchor_q` is
    /// pinned to data edge `anchor_e` and every *other* query edge must be
    /// matched by an edge distinct from `anchor_e` and — crucially for the
    /// exactly-once property — embeddings are only counted if `anchor_e` is
    /// the most recently inserted of their edges (largest edge id among the
    /// current batch cannot be tracked here, so we simply require that no
    /// other query edge uses `anchor_e`, matching TurboFlux's per-edge
    /// enumeration).
    fn extend(
        &self,
        assignment: &mut Vec<Option<VertexId>>,
        anchor_q: QueryEdgeId,
        anchor_e: EdgeId,
        restrict_to_older: bool,
    ) -> usize {
        // Pick the next unassigned query vertex adjacent to an assigned one.
        let next = self.query.vertices().find(|&u| {
            assignment[u.index()].is_none()
                && self
                    .query
                    .neighbors(u)
                    .iter()
                    .any(|e| assignment[e.neighbor.index()].is_some())
        });
        let Some(u) = next else {
            // All vertices assigned (connected query): verify every query
            // edge has a data edge, counting edge-assignment combinations.
            return self.count_edge_assignments(assignment, anchor_q, anchor_e, restrict_to_older);
        };
        let mut count = 0;
        // Candidates: neighbours of an assigned anchor vertex.
        let (anchor_entry, anchor_v) = self
            .query
            .neighbors(u)
            .into_iter()
            .find_map(|entry| assignment[entry.neighbor.index()].map(|v| (entry, v)))
            .expect("next vertex touches an assigned one");
        let qe = self.query.edge(anchor_entry.edge);
        let u_is_dst = qe.dst == u;
        let candidates: Vec<VertexId> = if u_is_dst {
            self.graph.out_edges(anchor_v).map(|e| e.dst).collect()
        } else {
            self.graph.in_edges(anchor_v).map(|e| e.src).collect()
        };
        let mut seen = std::collections::HashSet::new();
        for v in candidates {
            if !seen.insert(v) {
                continue;
            }
            if !self.dcg_ok(v, u) {
                continue;
            }
            if assignment.contains(&Some(v)) {
                continue;
            }
            assignment[u.index()] = Some(v);
            // Check all query edges incident to u with both ends assigned.
            let ok = self.query.edges().iter().all(|e| {
                if !e.touches(u) {
                    return true;
                }
                match (assignment[e.src.index()], assignment[e.dst.index()]) {
                    (Some(vs), Some(vd)) => self
                        .graph
                        .edges_between(vs, vd)
                        .into_iter()
                        .any(|de| e.label.matches(de.label)),
                    _ => true,
                }
            });
            if ok {
                count += self.extend(assignment, anchor_q, anchor_e, restrict_to_older);
            }
            assignment[u.index()] = None;
        }
        count
    }

    fn count_edge_assignments(
        &self,
        assignment: &[Option<VertexId>],
        anchor_q: QueryEdgeId,
        anchor_e: EdgeId,
        restrict_to_older: bool,
    ) -> usize {
        // Count injective edge assignments where anchor_q -> anchor_e; for
        // insertions the anchor must be the most recently inserted edge of
        // the embedding, so each embedding is counted exactly once across the
        // per-edge enumerations.
        let anchor_seq = self.seq_of(anchor_e);
        let mut choices: Vec<Vec<EdgeId>> = Vec::with_capacity(self.query.edge_count());
        for (i, qe) in self.query.edges().iter().enumerate() {
            let vs = assignment[qe.src.index()].unwrap();
            let vd = assignment[qe.dst.index()].unwrap();
            let mut c: Vec<EdgeId> = self
                .graph
                .edges_between(vs, vd)
                .into_iter()
                .filter(|e| qe.label.matches(e.label))
                .map(|e| e.id)
                .collect();
            if i == anchor_q.index() {
                c.retain(|&e| e == anchor_e);
            } else if restrict_to_older {
                // Only edges that existed before the anchor edge was inserted
                // may fill the other positions: this is how the one-edge-at-a
                // time model avoids double counting.
                c.retain(|&e| e != anchor_e && self.seq_of(e) < anchor_seq);
            } else {
                c.retain(|&e| e != anchor_e);
            }
            if c.is_empty() {
                return 0;
            }
            choices.push(c);
        }
        // Count injective selections (one edge per query edge, all distinct).
        fn rec(choices: &[Vec<EdgeId>], used: &mut Vec<EdgeId>, idx: usize) -> usize {
            if idx == choices.len() {
                return 1;
            }
            let mut total = 0;
            for &e in &choices[idx] {
                if used.contains(&e) {
                    continue;
                }
                used.push(e);
                total += rec(choices, used, idx + 1);
                used.pop();
            }
            total
        }
        rec(&choices, &mut Vec::new(), 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnemonic_query::patterns;

    #[test]
    fn sequential_triangle_detection() {
        let mut tf = TurboFluxLike::new(patterns::triangle());
        let events = [
            StreamEvent::insert(0, 1, 0),
            StreamEvent::insert(1, 2, 0),
            StreamEvent::insert(2, 0, 0),
        ];
        let mut total = 0;
        for e in &events {
            total += tf.process_event(e).new_embeddings;
        }
        // One data triangle, three rotations of the directed triangle query.
        assert_eq!(total, 3);
        assert_eq!(tf.events_processed(), 3);
    }

    #[test]
    fn no_double_counting_across_events() {
        // A square plus diagonal processed edge by edge: every embedding of
        // the path query must be reported exactly once overall.
        let mut tf = TurboFluxLike::new(patterns::path(3));
        let events = [
            StreamEvent::insert(0, 1, 0),
            StreamEvent::insert(1, 2, 0),
            StreamEvent::insert(2, 3, 0),
            StreamEvent::insert(1, 3, 0),
        ];
        let total: u64 = events
            .iter()
            .map(|e| tf.process_event(e).new_embeddings)
            .sum();
        // Paths of length 2: 0-1-2, 0-1-3, 1-2-3 — three in total.
        assert_eq!(total, 3);
    }

    #[test]
    fn deletion_reports_removed_embeddings() {
        let mut tf = TurboFluxLike::new(patterns::triangle());
        for e in [
            StreamEvent::insert(0, 1, 0),
            StreamEvent::insert(1, 2, 0),
            StreamEvent::insert(2, 0, 0),
        ] {
            tf.process_event(&e);
        }
        let d = tf.process_event(&StreamEvent::delete(1, 2, 0));
        assert_eq!(d.removed_embeddings, 3);
        assert_eq!(tf.graph().live_edge_count(), 2);
    }

    #[test]
    fn per_edge_updates_touch_vertices_repeatedly() {
        // The redundancy Mnemonic removes: a star of edges around vertex 0
        // refreshes vertex 0 once per event.
        let mut tf = TurboFluxLike::new(patterns::path(2));
        let mut touched = 0;
        for i in 1..=5u32 {
            touched += tf
                .process_event(&StreamEvent::insert(0, i, 0))
                .vertices_touched;
        }
        assert!(touched >= 10, "vertex 0 is refreshed for every insertion");
    }

    #[test]
    fn bootstrap_does_not_report() {
        let mut tf = TurboFluxLike::new(patterns::triangle());
        tf.bootstrap(&[
            StreamEvent::insert(0, 1, 0),
            StreamEvent::insert(1, 2, 0),
            StreamEvent::insert(2, 0, 0),
        ]);
        assert_eq!(tf.totals(), (0, 0));
        // A later edge creating a second triangle is reported.
        let d = tf.process_batch(&[
            StreamEvent::insert(2, 3, 0),
            StreamEvent::insert(3, 4, 0),
            StreamEvent::insert(4, 2, 0),
        ]);
        assert_eq!(d.new_embeddings, 3);
    }
}
