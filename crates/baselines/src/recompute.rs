//! Naive from-scratch matcher: the correctness oracle.
//!
//! This matcher shares *no* machinery with the incremental engine: it is a
//! plain backtracking search over query vertices followed by explicit
//! enumeration of edge assignments. It is deliberately simple and slow — its
//! job is to define ground truth for the differential tests and to serve as
//! the "recompute everything per snapshot" baseline.

use mnemonic_graph::ids::{EdgeId, QueryEdgeId, QueryVertexId, VertexId};
use mnemonic_graph::multigraph::StreamingGraph;
use mnemonic_query::query_graph::QueryGraph;
use std::collections::HashSet;

/// Which matching semantics the oracle applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleSemantics {
    /// Injective vertex mapping, distinct data edge per query edge.
    Isomorphism,
    /// Unrestricted vertex mapping; data edges may be shared.
    Homomorphism,
    /// Isomorphism plus the temporal order encoded on the query edges.
    TemporalIsomorphism,
}

/// One complete match: data vertices per query vertex and data edges per
/// query edge, in query-id order. Identical layout to
/// [`mnemonic_core::embedding::CompleteEmbedding`], so results can be compared
/// directly.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OracleEmbedding {
    /// Data vertex matched to each query vertex.
    pub vertices: Vec<VertexId>,
    /// Data edge matched to each query edge.
    pub edges: Vec<EdgeId>,
}

/// The naive matcher.
#[derive(Debug, Clone, Copy)]
pub struct NaiveMatcher {
    /// Semantics applied by this matcher.
    pub semantics: OracleSemantics,
}

impl NaiveMatcher {
    /// Create a matcher with the given semantics.
    pub fn new(semantics: OracleSemantics) -> Self {
        NaiveMatcher { semantics }
    }

    /// Enumerate every embedding of `query` in `graph`.
    pub fn enumerate(&self, graph: &StreamingGraph, query: &QueryGraph) -> Vec<OracleEmbedding> {
        let n = query.vertex_count();
        if n == 0 {
            return Vec::new();
        }
        // Order query vertices so each (after the first) touches an earlier
        // one — a simple connected expansion order.
        let order = Self::expansion_order(query);
        let mut assignment: Vec<Option<VertexId>> = vec![None; n];
        let mut results = Vec::new();
        self.extend_vertices(graph, query, &order, 0, &mut assignment, &mut results);
        results
    }

    /// Count embeddings without materialising them all (still exhaustive).
    pub fn count(&self, graph: &StreamingGraph, query: &QueryGraph) -> usize {
        self.enumerate(graph, query).len()
    }

    fn expansion_order(query: &QueryGraph) -> Vec<QueryVertexId> {
        let n = query.vertex_count();
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        // Start from vertex 0, BFS over the undirected structure, then append
        // any disconnected leftovers (the engine rejects those, the oracle
        // tolerates them).
        let mut queue = std::collections::VecDeque::from([QueryVertexId(0)]);
        seen[0] = true;
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for entry in query.neighbors(u) {
                if !seen[entry.neighbor.index()] {
                    seen[entry.neighbor.index()] = true;
                    queue.push_back(entry.neighbor);
                }
            }
        }
        for u in query.vertices() {
            if !seen[u.index()] {
                order.push(u);
            }
        }
        order
    }

    fn injective(&self) -> bool {
        matches!(
            self.semantics,
            OracleSemantics::Isomorphism | OracleSemantics::TemporalIsomorphism
        )
    }

    fn vertex_candidates(
        &self,
        graph: &StreamingGraph,
        query: &QueryGraph,
        u: QueryVertexId,
        assignment: &[Option<VertexId>],
    ) -> Vec<VertexId> {
        let label = query.vertex_label(u);
        // If u has an already-assigned neighbour, only vertices adjacent to
        // that assignment can work — scan its adjacency instead of the whole
        // graph.
        let anchored = query
            .neighbors(u)
            .into_iter()
            .find_map(|entry| assignment[entry.neighbor.index()].map(|v| (entry, v)));
        let mut candidates: Vec<VertexId> = match anchored {
            Some((entry, anchor)) => {
                let qe = query.edge(entry.edge);
                let u_is_dst = qe.dst == u;
                let scan = if u_is_dst {
                    graph.out_edges(anchor).map(|e| e.dst).collect::<Vec<_>>()
                } else {
                    graph.in_edges(anchor).map(|e| e.src).collect::<Vec<_>>()
                };
                scan
            }
            None => graph.active_vertices().collect(),
        };
        candidates.sort_unstable();
        candidates.dedup();
        candidates
            .into_iter()
            .filter(|&v| label.matches(graph.vertex_label(v)))
            .collect()
    }

    /// Whether the (partial) vertex assignment is consistent: every query
    /// edge with both endpoints assigned has at least one matching data edge.
    fn edges_available(
        &self,
        graph: &StreamingGraph,
        query: &QueryGraph,
        assignment: &[Option<VertexId>],
        just_assigned: QueryVertexId,
    ) -> bool {
        for (qid, qe) in query.edges().iter().enumerate() {
            if !qe.touches(just_assigned) {
                continue;
            }
            let (Some(vs), Some(vd)) = (assignment[qe.src.index()], assignment[qe.dst.index()])
            else {
                continue;
            };
            let any = graph
                .edges_between(vs, vd)
                .into_iter()
                .any(|e| qe.label.matches(e.label));
            if !any {
                return false;
            }
            let _ = qid;
        }
        true
    }

    fn extend_vertices(
        &self,
        graph: &StreamingGraph,
        query: &QueryGraph,
        order: &[QueryVertexId],
        depth: usize,
        assignment: &mut Vec<Option<VertexId>>,
        results: &mut Vec<OracleEmbedding>,
    ) {
        if depth == order.len() {
            let vertices: Vec<VertexId> = assignment.iter().map(|a| a.unwrap()).collect();
            let mut edge_choice: Vec<Option<EdgeId>> = vec![None; query.edge_count()];
            self.extend_edges(graph, query, &vertices, 0, &mut edge_choice, results);
            return;
        }
        let u = order[depth];
        for v in self.vertex_candidates(graph, query, u, assignment) {
            if self.injective() && assignment.contains(&Some(v)) {
                continue;
            }
            assignment[u.index()] = Some(v);
            if self.edges_available(graph, query, assignment, u) {
                self.extend_vertices(graph, query, order, depth + 1, assignment, results);
            }
            assignment[u.index()] = None;
        }
    }

    fn extend_edges(
        &self,
        graph: &StreamingGraph,
        query: &QueryGraph,
        vertices: &[VertexId],
        q_index: usize,
        edge_choice: &mut Vec<Option<EdgeId>>,
        results: &mut Vec<OracleEmbedding>,
    ) {
        if q_index == query.edge_count() {
            if self.semantics == OracleSemantics::TemporalIsomorphism
                && !self.temporal_consistent(graph, query, edge_choice)
            {
                return;
            }
            results.push(OracleEmbedding {
                vertices: vertices.to_vec(),
                edges: edge_choice.iter().map(|e| e.unwrap()).collect(),
            });
            return;
        }
        let qe = query.edge(QueryEdgeId(q_index as u16));
        let vs = vertices[qe.src.index()];
        let vd = vertices[qe.dst.index()];
        let share_allowed = self.semantics == OracleSemantics::Homomorphism;
        for edge in graph.edges_between(vs, vd) {
            if !qe.label.matches(edge.label) {
                continue;
            }
            if !share_allowed && edge_choice.contains(&Some(edge.id)) {
                continue;
            }
            edge_choice[q_index] = Some(edge.id);
            self.extend_edges(graph, query, vertices, q_index + 1, edge_choice, results);
            edge_choice[q_index] = None;
        }
    }

    fn temporal_consistent(
        &self,
        graph: &StreamingGraph,
        query: &QueryGraph,
        edge_choice: &[Option<EdgeId>],
    ) -> bool {
        let ranked: Vec<(u32, EdgeId)> = query
            .edges()
            .iter()
            .enumerate()
            .filter_map(|(i, qe)| qe.temporal_rank.map(|r| (r, edge_choice[i].unwrap())))
            .collect();
        for (i, &(ra, ea)) in ranked.iter().enumerate() {
            for &(rb, eb) in ranked.iter().skip(i + 1) {
                let ta = graph
                    .edge_record(ea)
                    .map(|r| r.timestamp)
                    .unwrap_or_default();
                let tb = graph
                    .edge_record(eb)
                    .map(|r| r.timestamp)
                    .unwrap_or_default();
                if ra < rb && ta >= tb {
                    return false;
                }
                if ra > rb && ta <= tb {
                    return false;
                }
            }
        }
        true
    }

    /// Enumerate embeddings as a hash set (convenient for differential
    /// comparisons).
    pub fn enumerate_set(
        &self,
        graph: &StreamingGraph,
        query: &QueryGraph,
    ) -> HashSet<OracleEmbedding> {
        self.enumerate(graph, query).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnemonic_graph::builder::{paper_example_graph, GraphBuilder};
    use mnemonic_query::patterns;
    use mnemonic_query::query_tree::paper_example_query;

    #[test]
    fn triangle_counting_with_rotations() {
        let graph = GraphBuilder::new()
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(2, 0, 0)
            .build();
        let iso = NaiveMatcher::new(OracleSemantics::Isomorphism);
        assert_eq!(iso.count(&graph, &patterns::triangle()), 3);
    }

    #[test]
    fn paper_example_has_two_embeddings() {
        let graph = paper_example_graph();
        let (query, _) = paper_example_query();
        let iso = NaiveMatcher::new(OracleSemantics::Isomorphism);
        let found = iso.enumerate(&graph, &query);
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn homomorphism_is_a_superset_of_isomorphism() {
        let graph = GraphBuilder::new()
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(2, 0, 0)
            .edge(1, 0, 0)
            .build();
        let query = patterns::path(3);
        let iso = NaiveMatcher::new(OracleSemantics::Isomorphism).count(&graph, &query);
        let hom = NaiveMatcher::new(OracleSemantics::Homomorphism).count(&graph, &query);
        assert!(hom >= iso);
        assert!(iso > 0);
    }

    #[test]
    fn parallel_edges_produce_distinct_embeddings() {
        let graph = GraphBuilder::new().edge(0, 1, 0).edge(0, 1, 0).build();
        let query = patterns::path(2);
        let iso = NaiveMatcher::new(OracleSemantics::Isomorphism);
        assert_eq!(iso.count(&graph, &query), 2);
    }

    #[test]
    fn temporal_semantics_filters_out_of_order_paths() {
        let graph = GraphBuilder::new()
            .timed_edge(0, 1, 0, 10)
            .timed_edge(1, 2, 0, 5)
            .timed_edge(1, 3, 0, 20)
            .build();
        let query = patterns::temporal_path(3);
        let temporal = NaiveMatcher::new(OracleSemantics::TemporalIsomorphism);
        let found = temporal.enumerate(&graph, &query);
        // Only 0 -> 1 -> 3 respects the increasing-timestamp constraint.
        assert_eq!(found.len(), 1);
        assert_eq!(
            found[0].vertices,
            vec![VertexId(0), VertexId(1), VertexId(3)]
        );
        // Plain isomorphism finds both paths.
        let iso = NaiveMatcher::new(OracleSemantics::Isomorphism);
        assert_eq!(iso.count(&graph, &query), 2);
    }

    #[test]
    fn empty_graph_has_no_embeddings() {
        let graph = StreamingGraph::new();
        let iso = NaiveMatcher::new(OracleSemantics::Isomorphism);
        assert_eq!(iso.count(&graph, &patterns::triangle()), 0);
    }
}
