//! BigJoin-style matcher (Ammar et al., VLDB 2018), rebuilt for the Table II
//! comparison.
//!
//! BigJoin evaluates a subgraph query as a relational multi-way join and
//! expands the result set **one query vertex at a time**, using worst-case
//! optimal joins: to bind the next query vertex, the candidate sets proposed
//! by every already-bound neighbour are intersected, and the smallest
//! proposer is scanned first. This works very well for small, dense queries
//! (cliques benefit from aggressive intersection) but degrades on larger and
//! sparser queries because the partial-match relation explodes before the
//! remaining constraints can prune it — the behaviour Table II and the
//! surrounding discussion report. The matcher computes homomorphisms, like
//! the original system.

use mnemonic_graph::ids::{QueryVertexId, VertexId};
use mnemonic_graph::multigraph::StreamingGraph;
use mnemonic_query::query_graph::QueryGraph;
use std::collections::HashSet;

/// Statistics of one BigJoin evaluation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BigJoinStats {
    /// Homomorphic matches found.
    pub matches: u64,
    /// Total partial bindings materialised across all extension levels — the
    /// quantity that blows up for large queries.
    pub partial_bindings: u64,
}

/// The BigJoin-style matcher.
pub struct BigJoinLike;

impl BigJoinLike {
    /// The vertex extension order: start from the query vertex with the
    /// highest degree, then repeatedly add the unbound vertex with the most
    /// bound neighbours (ties broken by degree) — the standard WCO-join
    /// vertex ordering.
    fn extension_order(query: &QueryGraph) -> Vec<QueryVertexId> {
        let n = query.vertex_count();
        let mut order = Vec::with_capacity(n);
        let mut bound = vec![false; n];
        let first = query
            .vertices()
            .max_by_key(|&u| (query.degree(u), std::cmp::Reverse(u.0)))
            .expect("non-empty query");
        order.push(first);
        bound[first.index()] = true;
        while order.len() < n {
            let next = query
                .vertices()
                .filter(|u| !bound[u.index()])
                .max_by_key(|&u| {
                    let bound_neighbors = query
                        .neighbors(u)
                        .iter()
                        .filter(|e| bound[e.neighbor.index()])
                        .count();
                    (bound_neighbors, query.degree(u), std::cmp::Reverse(u.0))
                })
                .expect("query is connected");
            order.push(next);
            bound[next.index()] = true;
        }
        order
    }

    /// Count homomorphic matches of `query` in `graph`, expanding one query
    /// vertex at a time with candidate-set intersection.
    pub fn count(graph: &StreamingGraph, query: &QueryGraph) -> BigJoinStats {
        let order = Self::extension_order(query);
        let mut stats = BigJoinStats::default();
        let mut assignment: Vec<Option<VertexId>> = vec![None; query.vertex_count()];
        Self::extend(graph, query, &order, 0, &mut assignment, &mut stats);
        stats
    }

    fn extend(
        graph: &StreamingGraph,
        query: &QueryGraph,
        order: &[QueryVertexId],
        depth: usize,
        assignment: &mut Vec<Option<VertexId>>,
        stats: &mut BigJoinStats,
    ) {
        if depth == order.len() {
            stats.matches += 1;
            return;
        }
        let u = order[depth];
        let label = query.vertex_label(u);

        // Each bound neighbour proposes a candidate set (its adjacency in the
        // right direction, filtered by the edge label); the candidate set of
        // `u` is the intersection, seeded from the smallest proposal —
        // the worst-case-optimal join step.
        let mut proposals: Vec<HashSet<VertexId>> = Vec::new();
        for entry in query.neighbors(u) {
            let Some(anchor) = assignment[entry.neighbor.index()] else {
                continue;
            };
            let qe = query.edge(entry.edge);
            let u_is_dst = qe.dst == u;
            let set: HashSet<VertexId> = if u_is_dst {
                graph
                    .out_edges(anchor)
                    .filter(|e| qe.label.matches(e.label))
                    .map(|e| e.dst)
                    .collect()
            } else {
                graph
                    .in_edges(anchor)
                    .filter(|e| qe.label.matches(e.label))
                    .map(|e| e.src)
                    .collect()
            };
            proposals.push(set);
        }

        let candidates: Vec<VertexId> = if proposals.is_empty() {
            // First vertex in the order: every active vertex with the right
            // label proposes itself.
            graph
                .active_vertices()
                .filter(|&v| label.matches(graph.vertex_label(v)))
                .collect()
        } else {
            proposals.sort_by_key(|s| s.len());
            let (seed, rest) = proposals.split_first().expect("non-empty proposals");
            seed.iter()
                .copied()
                .filter(|v| label.matches(graph.vertex_label(*v)))
                .filter(|v| rest.iter().all(|s| s.contains(v)))
                .collect()
        };

        stats.partial_bindings += candidates.len() as u64;
        for v in candidates {
            assignment[u.index()] = Some(v);
            Self::extend(graph, query, order, depth + 1, assignment, stats);
            assignment[u.index()] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recompute::{NaiveMatcher, OracleSemantics};
    use mnemonic_graph::builder::GraphBuilder;
    use mnemonic_query::patterns;

    fn diamond() -> StreamingGraph {
        GraphBuilder::new()
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(2, 0, 0)
            .edge(0, 2, 0)
            .edge(2, 3, 0)
            .edge(3, 0, 0)
            .build()
    }

    #[test]
    fn homomorphism_counts_match_the_oracle() {
        let graph = diamond();
        for query in [
            patterns::triangle(),
            patterns::path(3),
            patterns::rectangle(),
        ] {
            let oracle = NaiveMatcher::new(OracleSemantics::Homomorphism);
            // The oracle counts (vertex, edge) mappings; with no parallel
            // edges in this graph the per-vertex-mapping edge choice is
            // unique, so the counts are directly comparable.
            assert_eq!(
                BigJoinLike::count(&graph, &query).matches as usize,
                oracle.count(&graph, &query),
                "query mismatch"
            );
        }
    }

    #[test]
    fn clique_queries_benefit_from_intersection() {
        // A 5-clique data graph: the 4-clique query's partial bindings stay
        // bounded because every level intersects adjacency lists.
        let mut builder = GraphBuilder::new();
        for i in 0..5u32 {
            for j in 0..5u32 {
                if i < j {
                    builder = builder.edge(i, j, 0);
                }
            }
        }
        let graph = builder.build();
        let stats = BigJoinLike::count(&graph, &patterns::clique(4));
        assert_eq!(stats.matches, 5); // choose 4 of 5 vertices, one DAG order each
        assert!(stats.partial_bindings < 100);
    }

    #[test]
    fn sparse_queries_materialise_more_partials() {
        // A star data graph: the path query forces a large intermediate
        // relation relative to the number of final matches.
        let mut builder = GraphBuilder::new();
        for i in 1..=20u32 {
            builder = builder.edge(0, i, 0);
        }
        let graph = builder.build();
        let stats = BigJoinLike::count(&graph, &patterns::path(3));
        assert_eq!(stats.matches, 0, "no directed 2-path through the star");
        assert!(stats.partial_bindings >= 20);
    }

    #[test]
    fn empty_graph_yields_zero() {
        let graph = StreamingGraph::new();
        let stats = BigJoinLike::count(&graph, &patterns::triangle());
        assert_eq!(stats.matches, 0);
    }
}
