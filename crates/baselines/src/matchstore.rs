//! Match-store-tree baseline for time-constrained matching, modelled after
//! Li et al. (ICDE 2019) for the Figure 16 comparison.
//!
//! The system keeps **partially materialised embeddings** in a prefix tree
//! over the query's temporal order: when an edge arrives it extends every
//! stored partial whose next expected query edge it matches, new length-1
//! partials are seeded, and completed prefixes are reported as matches. When
//! an edge leaves the sliding window, every partial that used it is purged.
//!
//! This reproduces the two properties Mnemonic's evaluation leans on:
//!
//! * matching work per event is proportional to the number of *stored
//!   partials*, which also dominates memory, and
//! * updates to the store (insertions and especially evictions) are expensive
//!   because each partial referencing an edge has to be found and removed.
//!
//! The temporal order of the query doubles as the matching order, and the
//! input stream is assumed to be timestamp-ordered — the setting of the
//! paper's LANL experiments.

use mnemonic_graph::ids::{EdgeId, QueryEdgeId, VertexId};
use mnemonic_query::query_graph::QueryGraph;
use mnemonic_stream::event::StreamEvent;
use std::collections::HashMap;

/// One partially (or fully) materialised embedding.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Partial {
    /// Data edge per matched query-edge prefix position.
    edges: Vec<EdgeId>,
    /// Vertex bindings accumulated so far (query vertex -> data vertex).
    vertices: HashMap<u16, VertexId>,
    /// Timestamp of the last matched edge (for the ordering constraint).
    last_timestamp: u64,
}

/// Statistics of the store.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MatchStoreStats {
    /// Currently stored partial embeddings (the memory cost driver).
    pub stored_partials: usize,
    /// Complete matches reported so far.
    pub matches: u64,
    /// Partials discarded by evictions.
    pub purged_partials: u64,
}

/// The match-store-tree matcher.
pub struct MatchStoreTree {
    query: QueryGraph,
    /// Query edges in temporal (== matching) order.
    order: Vec<QueryEdgeId>,
    /// Stored partials grouped by prefix length (1..order.len()).
    store: Vec<Vec<Partial>>,
    stats: MatchStoreStats,
}

impl MatchStoreTree {
    /// Create a matcher; the query's temporal ranks define the matching
    /// order (edges without a rank are appended in id order).
    pub fn new(query: QueryGraph) -> Self {
        let mut order: Vec<QueryEdgeId> = query.edge_ids().collect();
        order.sort_by_key(|&q| (query.edge(q).temporal_rank.unwrap_or(u32::MAX), q.0));
        let levels = order.len();
        MatchStoreTree {
            query,
            order,
            store: vec![Vec::new(); levels],
            stats: MatchStoreStats::default(),
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> MatchStoreStats {
        let stored = self.store.iter().map(|l| l.len()).sum();
        MatchStoreStats {
            stored_partials: stored,
            ..self.stats
        }
    }

    /// Whether a data edge can serve as the match of query edge `q` given a
    /// partial's vertex bindings.
    fn compatible(&self, partial: &Partial, q: QueryEdgeId, event: &StreamEvent) -> bool {
        let qe = self.query.edge(q);
        if !qe.label.matches(event.label) {
            return false;
        }
        if !self.query.vertex_label(qe.src).matches(event.src_label)
            || !self.query.vertex_label(qe.dst).matches(event.dst_label)
        {
            return false;
        }
        // Endpoint consistency + injectivity.
        for (&qv, &dv) in &partial.vertices {
            if qv == qe.src.0 && dv != event.src {
                return false;
            }
            if qv == qe.dst.0 && dv != event.dst {
                return false;
            }
            if qv != qe.src.0 && dv == event.src {
                return false;
            }
            if qv != qe.dst.0 && dv == event.dst {
                return false;
            }
        }
        // Temporal order: strictly increasing timestamps along the order.
        event.timestamp.0 > partial.last_timestamp || partial.edges.is_empty()
    }

    fn extended(
        &self,
        partial: &Partial,
        q: QueryEdgeId,
        event: &StreamEvent,
        id: EdgeId,
    ) -> Partial {
        let qe = self.query.edge(q);
        let mut next = partial.clone();
        next.edges.push(id);
        next.vertices.insert(qe.src.0, event.src);
        next.vertices.insert(qe.dst.0, event.dst);
        next.last_timestamp = event.timestamp.0;
        next
    }

    /// Process one inserted edge (with the id the data graph assigned to it).
    /// Returns the number of complete matches produced by this edge.
    pub fn insert_edge(&mut self, event: &StreamEvent, id: EdgeId) -> u64 {
        let mut produced = 0u64;
        let levels = self.order.len();
        // Extend longest prefixes first so a new partial created at level i is
        // not immediately re-extended by the same event.
        for level in (0..levels).rev() {
            let q = self.order[level];
            let sources: Vec<Partial> = if level == 0 {
                vec![Partial {
                    edges: Vec::new(),
                    vertices: HashMap::new(),
                    last_timestamp: 0,
                }]
            } else {
                self.store[level - 1].clone()
            };
            for partial in &sources {
                if partial.edges.len() != level {
                    continue;
                }
                if !self.compatible(partial, q, event) {
                    continue;
                }
                let next = self.extended(partial, q, event, id);
                if next.edges.len() == levels {
                    produced += 1;
                    self.stats.matches += 1;
                } else {
                    self.store[next.edges.len() - 1].push(next);
                }
            }
        }
        produced
    }

    /// Purge every partial that references an evicted edge; returns how many
    /// partials were dropped.
    pub fn evict_edge(&mut self, id: EdgeId) -> u64 {
        let mut purged = 0u64;
        for level in &mut self.store {
            let before = level.len();
            level.retain(|p| !p.edges.contains(&id));
            purged += (before - level.len()) as u64;
        }
        self.stats.purged_partials += purged;
        purged
    }

    /// Expected query-edge order (temporal rank order).
    pub fn order(&self) -> &[QueryEdgeId] {
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnemonic_query::patterns;

    fn ev(src: u32, dst: u32, ts: u64) -> StreamEvent {
        StreamEvent::insert(src, dst, 0).at(ts)
    }

    #[test]
    fn temporal_path_matched_in_order() {
        let mut store = MatchStoreTree::new(patterns::temporal_path(3));
        assert_eq!(store.insert_edge(&ev(0, 1, 10), EdgeId(0)), 0);
        assert_eq!(store.stats().stored_partials, 1);
        // Completing edge with a later timestamp produces one match.
        assert_eq!(store.insert_edge(&ev(1, 2, 20), EdgeId(1)), 1);
        assert_eq!(store.stats().matches, 1);
    }

    #[test]
    fn out_of_order_timestamps_do_not_match() {
        let mut store = MatchStoreTree::new(patterns::temporal_path(3));
        store.insert_edge(&ev(0, 1, 50), EdgeId(0));
        // The second hop has an *earlier* timestamp: rejected.
        assert_eq!(store.insert_edge(&ev(1, 2, 10), EdgeId(1)), 0);
        assert_eq!(store.stats().matches, 0);
    }

    #[test]
    fn eviction_purges_partials() {
        let mut store = MatchStoreTree::new(patterns::temporal_path(4));
        store.insert_edge(&ev(0, 1, 10), EdgeId(0));
        store.insert_edge(&ev(1, 2, 20), EdgeId(1));
        // Three partials: {e0}, {e0,e1} and the freshly seeded {e1}.
        assert_eq!(store.stats().stored_partials, 3);
        let purged = store.evict_edge(EdgeId(0));
        assert_eq!(
            purged, 2,
            "both partials referencing the first hop are dropped"
        );
        assert_eq!(store.stats().stored_partials, 1);
        // The chain can no longer be completed.
        assert_eq!(store.insert_edge(&ev(2, 3, 30), EdgeId(2)), 0);
    }

    #[test]
    fn store_growth_tracks_open_prefixes() {
        let mut store = MatchStoreTree::new(patterns::temporal_path(3));
        // Many first hops out of different sources: each becomes a stored
        // partial — the memory behaviour the paper criticises.
        for i in 0..50u32 {
            store.insert_edge(&ev(i * 2, i * 2 + 1, 10 + i as u64), EdgeId(i));
        }
        assert_eq!(store.stats().stored_partials, 50);
        assert_eq!(store.stats().matches, 0);
    }

    #[test]
    fn injectivity_enforced() {
        let mut store = MatchStoreTree::new(patterns::temporal_path(3));
        store.insert_edge(&ev(0, 1, 10), EdgeId(0));
        // 1 -> 0 would map u2 to the data vertex already used by u0.
        assert_eq!(store.insert_edge(&ev(1, 0, 20), EdgeId(1)), 0);
    }
}
