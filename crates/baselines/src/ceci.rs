//! CECI-style static matcher (Bhattarai, Liu & Huang, SIGMOD 2019), rebuilt
//! for the per-snapshot recomputation comparison of Figure 11.
//!
//! CECI builds a *query-centric* compact embedding cluster index: for every
//! tree edge `(u_p, u)` a key-value store keyed by the candidate matches of
//! `u_p`, whose values are the adjacent candidate matches of `u` (Figure 5(a)
//! of the Mnemonic paper). Enumeration then walks the index instead of the
//! graph, which gives dense, cache-friendly candidate scans — but the index
//! has to be rebuilt (or expensively patched, Observation #1) whenever the
//! graph changes, which is why Mnemonic recomputes it from scratch on every
//! snapshot in the comparison.

use mnemonic_graph::ids::{EdgeId, VertexId};
use mnemonic_graph::multigraph::StreamingGraph;
use mnemonic_query::query_graph::QueryGraph;
use mnemonic_query::query_tree::QueryTree;
use mnemonic_query::root::select_root_by_degree;
use std::collections::{HashMap, HashSet};

/// The per-tree-edge candidate store: for each match of the parent query
/// vertex, the adjacent (child match, connecting edge) pairs.
type ClusterStore = HashMap<VertexId, Vec<(VertexId, EdgeId)>>;

/// A CECI-style index built for one graph snapshot.
pub struct CeciIndex {
    tree: QueryTree,
    /// One cluster store per non-root query vertex, indexed by DEBI column.
    clusters: Vec<ClusterStore>,
    /// Candidate matches of the root query vertex.
    root_candidates: Vec<VertexId>,
}

impl CeciIndex {
    /// Build the index from scratch for the current graph snapshot.
    pub fn build(graph: &StreamingGraph, query: &QueryGraph) -> Self {
        let root = select_root_by_degree(query);
        let tree = QueryTree::build(query, root);

        // Top-down construction in BFS order: candidate sets per query vertex
        // start from the label filter and are narrowed by connectivity to the
        // parent's candidates.
        let mut candidates: Vec<HashSet<VertexId>> = query
            .vertices()
            .map(|u| {
                let label = query.vertex_label(u);
                graph
                    .active_vertices()
                    .filter(|&v| label.matches(graph.vertex_label(v)))
                    .collect()
            })
            .collect();

        let mut clusters: Vec<ClusterStore> = vec![HashMap::new(); tree.debi_width()];
        for te in tree.tree_edges() {
            let column = tree.debi_column(te.child).unwrap() as usize;
            let qe = query.edge(te.query_edge);
            let mut child_set: HashSet<VertexId> = HashSet::new();
            let mut store: ClusterStore = HashMap::new();
            for &vp in &candidates[te.parent.index()] {
                let mut entries = Vec::new();
                if te.child_is_dst {
                    for e in graph.out_edges(vp) {
                        if qe.label.matches(e.label)
                            && candidates[te.child.index()].contains(&e.dst)
                        {
                            entries.push((e.dst, e.id));
                            child_set.insert(e.dst);
                        }
                    }
                } else {
                    for e in graph.in_edges(vp) {
                        if qe.label.matches(e.label)
                            && candidates[te.child.index()].contains(&e.src)
                        {
                            entries.push((e.src, e.id));
                            child_set.insert(e.src);
                        }
                    }
                }
                if !entries.is_empty() {
                    store.insert(vp, entries);
                }
            }
            candidates[te.child.index()] = child_set;
            clusters[column] = store;
        }

        // Bottom-up refinement: a parent candidate with no surviving child
        // entry for some child is dropped (one reverse pass).
        for te in tree.tree_edges().iter().rev() {
            let column = tree.debi_column(te.child).unwrap() as usize;
            let surviving_children = &candidates[te.child.index()];
            let store = &mut clusters[column];
            store.retain(|_, entries| {
                entries.retain(|(c, _)| surviving_children.contains(c));
                !entries.is_empty()
            });
            let surviving_parents: HashSet<VertexId> = store.keys().copied().collect();
            candidates[te.parent.index()]
                .retain(|v| surviving_parents.contains(v) || tree.children(te.parent).len() > 1);
        }

        let root_candidates = candidates[root.index()].iter().copied().collect();
        CeciIndex {
            tree,
            clusters,
            root_candidates,
        }
    }

    /// Total number of (parent, child, edge) entries stored — the index size
    /// the space-complexity discussion of Section VII-D refers to.
    pub fn entry_count(&self) -> usize {
        self.clusters
            .iter()
            .map(|c| c.values().map(|v| v.len()).sum::<usize>())
            .sum()
    }

    /// Candidate matches of the root query vertex.
    pub fn root_candidates(&self) -> &[VertexId] {
        &self.root_candidates
    }
}

/// The CECI-style matcher: build the index, then enumerate isomorphic
/// embeddings by walking it. `count_only` avoids materialisation.
pub struct CeciLike;

impl CeciLike {
    /// Count isomorphic embeddings of `query` in the current `graph`
    /// snapshot, rebuilding the index from scratch (the comparison mode of
    /// Figure 11).
    pub fn count_snapshot(graph: &StreamingGraph, query: &QueryGraph) -> usize {
        let index = CeciIndex::build(graph, query);
        let mut count = 0usize;
        let mut assignment: Vec<Option<VertexId>> = vec![None; query.vertex_count()];
        for &root_match in &index.root_candidates {
            assignment[index.tree.root().index()] = Some(root_match);
            count += Self::extend(graph, query, &index, &mut assignment, 0);
            assignment[index.tree.root().index()] = None;
        }
        count
    }

    fn extend(
        graph: &StreamingGraph,
        query: &QueryGraph,
        index: &CeciIndex,
        assignment: &mut Vec<Option<VertexId>>,
        depth: usize,
    ) -> usize {
        if depth == index.tree.tree_edges().len() {
            // All vertices bound; verify non-tree edges.
            let ok = index.tree.non_tree_edges().iter().all(|&q| {
                let qe = query.edge(q);
                let vs = assignment[qe.src.index()].unwrap();
                let vd = assignment[qe.dst.index()].unwrap();
                graph
                    .edges_between(vs, vd)
                    .into_iter()
                    .any(|e| qe.label.matches(e.label))
            });
            return usize::from(ok);
        }
        let te = index.tree.tree_edges()[depth];
        let column = index.tree.debi_column(te.child).unwrap() as usize;
        let parent_match = assignment[te.parent.index()].expect("BFS order binds parents first");
        let Some(entries) = index.clusters[column].get(&parent_match) else {
            return 0;
        };
        let mut count = 0;
        for &(child_match, _edge) in entries {
            if assignment.contains(&Some(child_match)) {
                continue; // injectivity
            }
            assignment[te.child.index()] = Some(child_match);
            count += Self::extend(graph, query, index, assignment, depth + 1);
            assignment[te.child.index()] = None;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnemonic_graph::builder::{paper_example_graph, GraphBuilder};
    use mnemonic_query::patterns;

    #[test]
    fn index_stores_parent_keyed_candidates() {
        let graph = paper_example_graph();
        let (query, _) = mnemonic_query::query_tree::paper_example_query();
        let index = CeciIndex::build(&graph, &query);
        assert!(index.entry_count() > 0);
        assert!(index.root_candidates().contains(&VertexId(1)));
    }

    #[test]
    fn snapshot_count_matches_known_answers() {
        let graph = paper_example_graph();
        let (query, _) = mnemonic_query::query_tree::paper_example_query();
        // Vertex-mapping count: the paper's two embeddings share the vertex
        // mapping except for u6 (v8 vs v0), so two vertex mappings exist.
        assert_eq!(CeciLike::count_snapshot(&graph, &query), 2);

        let tri_graph = GraphBuilder::new()
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(2, 0, 0)
            .build();
        assert_eq!(
            CeciLike::count_snapshot(&tri_graph, &patterns::triangle()),
            3
        );
    }

    #[test]
    fn empty_graph_yields_zero() {
        let graph = StreamingGraph::new();
        assert_eq!(CeciLike::count_snapshot(&graph, &patterns::triangle()), 0);
    }

    #[test]
    fn rebuilding_after_update_sees_new_matches() {
        let mut graph = GraphBuilder::new().edge(0, 1, 0).edge(1, 2, 0).build();
        let query = patterns::triangle();
        assert_eq!(CeciLike::count_snapshot(&graph, &query), 0);
        graph.insert_edge(mnemonic_graph::edge::EdgeTriple::new(
            VertexId(2),
            VertexId(0),
            mnemonic_graph::ids::EdgeLabel(0),
        ));
        assert_eq!(CeciLike::count_snapshot(&graph, &query), 3);
    }
}
