//! Migration exactness, property-based: for *random* migration schedules —
//! (segment boundary, query, destination shard) triples applied while a
//! mixed insert/delete stream replays — the merged result stream of a
//! sharded session must be identical, embedding for embedding, to the same
//! session that never migrates. This includes results of the segment during
//! which a migration happens: migrations execute strictly between delta
//! batches, so no batch is ever split across two shards.

use mnemonic::core::api::{LabelEdgeMatcher, UpdateMode};
use mnemonic::core::embedding::CompleteEmbedding;
use mnemonic::core::engine::EngineConfig;
use mnemonic::core::session::QueryHandle;
use mnemonic::core::shard::ShardedSession;
use mnemonic::core::variants::Isomorphism;
use mnemonic::query::patterns;
use mnemonic::query::query_graph::QueryGraph;
use mnemonic::stream::event::StreamEvent;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHARDS: usize = 3;
const QUERIES: usize = 4;
const SEGMENTS: usize = 6;
const EVENTS_PER_SEGMENT: usize = 25;

/// Same deterministic mixed stream construction as `tests/sharding.rs`.
fn mixed_stream(seed: u64, vertices: u32, labels: u16, events: usize) -> Vec<StreamEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<(u32, u32, u16)> = Vec::new();
    let mut out = Vec::with_capacity(events);
    for ts in 0..events as u64 {
        if !live.is_empty() && rng.gen_bool(0.25) {
            let idx = rng.gen_range(0..live.len());
            let (s, d, l) = live.swap_remove(idx);
            out.push(StreamEvent::delete(s, d, l).at(ts));
        } else {
            let src = rng.gen_range(0..vertices);
            let mut dst = rng.gen_range(0..vertices);
            if dst == src {
                dst = (dst + 1) % vertices;
            }
            let label = rng.gen_range(0..labels);
            live.push((src, dst, label));
            out.push(StreamEvent::insert(src, dst, label).at(ts));
        }
    }
    out
}

fn query_set() -> Vec<QueryGraph> {
    vec![
        patterns::triangle(),
        patterns::path(3),
        patterns::rectangle(),
        patterns::dual_triangle(),
    ]
}

fn sorted(mut embeddings: Vec<(usize, CompleteEmbedding)>) -> Vec<(usize, CompleteEmbedding)> {
    embeddings.sort();
    embeddings
}

/// Replay the stream in `SEGMENTS` chunks, executing the scheduled
/// migrations at their segment boundaries, and return each query's total
/// drained results.
/// Results are tagged with the segment index they were delivered in, so the
/// comparison also pins *when* each embedding surfaced — a migration must
/// not shift delivery across a segment boundary.
type Tagged = Vec<(usize, CompleteEmbedding)>;

fn replay(
    events: &[StreamEvent],
    schedule: &[(usize, usize, usize)],
    batch: usize,
) -> Vec<(Tagged, Tagged)> {
    let mut session = ShardedSession::builder()
        .shards(SHARDS)
        .config(EngineConfig {
            update_mode: UpdateMode::from_batch_size(batch),
            ..EngineConfig::sequential()
        })
        .build()
        .expect("valid sharded config");
    let handles: Vec<QueryHandle> = query_set()
        .into_iter()
        .map(|q| {
            session
                .register_query(q, Box::new(LabelEdgeMatcher), Box::new(Isomorphism))
                .expect("connected query")
        })
        .collect();
    let mut out = vec![(Vec::new(), Vec::new()); handles.len()];
    for (segment_idx, segment) in events.chunks(EVENTS_PER_SEGMENT).enumerate() {
        for &(at, query, to) in schedule {
            if at == segment_idx {
                session
                    .migrate_query(&handles[query], to)
                    .expect("live query and valid shard");
                assert_eq!(session.shard_of(&handles[query]), Some(to));
            }
        }
        session
            .run_events(segment.iter().copied())
            .expect("replay succeeds");
        for (q, handle) in handles.iter().enumerate() {
            let batch = handle.drain();
            out[q]
                .0
                .extend(batch.positive.into_iter().map(|e| (segment_idx, e)));
            out[q]
                .1
                .extend(batch.negative.into_iter().map(|e| (segment_idx, e)));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any migration schedule yields exactly the never-migrated results.
    #[test]
    fn random_migration_schedules_preserve_exactness(
        schedule in prop::collection::vec(
            (0usize..SEGMENTS, 0usize..QUERIES, 0usize..SHARDS),
            1..5,
        ),
        seed in 0u64..1_000,
        batch_choice in 0usize..3,
    ) {
        let batch = [1usize, 7, 64][batch_choice];
        let events = mixed_stream(seed, 10, 2, SEGMENTS * EVENTS_PER_SEGMENT);
        let migrated = replay(&events, &schedule, batch);
        let baseline = replay(&events, &[], batch);
        for (q, (got, want)) in migrated.into_iter().zip(baseline).enumerate() {
            prop_assert_eq!(
                sorted(got.0),
                sorted(want.0),
                "query {}: positive embeddings diverged under schedule {:?}",
                q,
                schedule
            );
            prop_assert_eq!(
                sorted(got.1),
                sorted(want.1),
                "query {}: negative embeddings diverged under schedule {:?}",
                q,
                schedule
            );
        }
    }
}
