//! Differential tests: the incremental Mnemonic engine against the naive
//! from-scratch oracle, on randomly generated insert/delete streams.
//!
//! The central correctness property of the paper — `S(G ⊕ ΔG) = S(G) ⊕ ΔS`
//! — is checked here by replaying random streams batch by batch and
//! verifying, after every snapshot, that
//! `previous_results + new_embeddings - removed_embeddings` equals the
//! oracle's result set on the current graph.
//!
//! Two replay paths are exercised: the snapshot path (`apply_snapshot`, the
//! batch boundaries fixed by the caller) and the engine's buffered update
//! path (`push_event`/`flush_pending`, the boundaries fixed by the engine's
//! `UpdateMode`), the latter across several engine batch sizes including the
//! per-edge degenerate case.

use mnemonic::baselines::recompute::{NaiveMatcher, OracleSemantics};
use mnemonic::core::api::LabelEdgeMatcher;
use mnemonic::core::embedding::{CollectingSink, CompleteEmbedding};
use mnemonic::core::engine::{EngineConfig, Mnemonic};
use mnemonic::core::variants::{Homomorphism, Isomorphism};
use mnemonic::graph::edge::EdgeTriple;
use mnemonic::graph::multigraph::StreamingGraph;
use mnemonic::query::patterns;
use mnemonic::query::query_graph::QueryGraph;
use mnemonic::stream::event::StreamEvent;
use mnemonic::stream::snapshot::Snapshot;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Build the oracle-comparable representation of an engine embedding.
fn key(e: &CompleteEmbedding) -> (Vec<u32>, Vec<u32>) {
    (
        e.vertices.iter().map(|v| v.0).collect(),
        e.edges.iter().map(|x| x.0).collect(),
    )
}

/// Replay `batches` through the engine and after every batch compare the
/// accumulated result set with the oracle run on an identically mutated
/// shadow graph.
fn run_differential(query: QueryGraph, batches: Vec<Vec<StreamEvent>>, isomorphism: bool) {
    let semantics: Box<dyn mnemonic::core::api::MatchSemantics> = if isomorphism {
        Box::new(Isomorphism)
    } else {
        Box::new(Homomorphism)
    };
    let mut engine = Mnemonic::new(
        query.clone(),
        Box::new(LabelEdgeMatcher),
        semantics,
        EngineConfig::sequential(),
    );
    let oracle = NaiveMatcher::new(if isomorphism {
        OracleSemantics::Isomorphism
    } else {
        OracleSemantics::Homomorphism
    });

    // Shadow graph mutated in lock-step with the engine. Edge ids stay in
    // sync because both sides insert and delete in the same order with the
    // same recycling policy.
    let mut shadow = StreamingGraph::new();
    let mut accumulated: HashSet<(Vec<u32>, Vec<u32>)> = HashSet::new();

    for (i, batch) in batches.into_iter().enumerate() {
        let insertions: Vec<StreamEvent> =
            batch.iter().filter(|e| e.is_insert()).copied().collect();
        let deletions: Vec<StreamEvent> = batch.iter().filter(|e| e.is_delete()).copied().collect();

        // Engine: insertions first (Algorithm 1), then deletions — mirror the
        // same order on the shadow graph.
        let sink = CollectingSink::new();
        engine.apply_snapshot(
            &Snapshot {
                id: i as u64,
                insertions: insertions.clone(),
                deletions: deletions.clone(),
                ..Default::default()
            },
            &sink,
        );

        for e in &insertions {
            shadow.insert_edge(EdgeTriple::with_timestamp(
                e.src,
                e.dst,
                e.label,
                e.timestamp,
            ));
        }
        for e in &deletions {
            let _ = shadow.delete_matching(e.src, e.dst, e.label);
        }

        for emb in sink.take_positive() {
            assert!(
                accumulated.insert(key(&emb)),
                "batch {i}: embedding reported twice as new: {emb:?}"
            );
        }
        for emb in sink.take_negative() {
            assert!(
                accumulated.remove(&key(&emb)),
                "batch {i}: removed embedding was never reported: {emb:?}"
            );
        }

        let expected: HashSet<(Vec<u32>, Vec<u32>)> = oracle
            .enumerate(&shadow, &query)
            .into_iter()
            .map(|o| {
                (
                    o.vertices.iter().map(|v| v.0).collect(),
                    o.edges.iter().map(|x| x.0).collect(),
                )
            })
            .collect();
        assert_eq!(
            accumulated, expected,
            "batch {i}: incremental result set diverged from the oracle"
        );
    }
}

/// Replay `batches` through the engine's buffered `push_event` path — once
/// per engine batch size in `engine_batches` — comparing the accumulated net
/// match count with the oracle at every snapshot boundary (a
/// `flush_pending` call, mirroring how an ingest loop drains the buffer at
/// a consistency point).
fn run_batched_differential(
    query: QueryGraph,
    batches: Vec<Vec<StreamEvent>>,
    engine_batches: &[usize],
) {
    use mnemonic::core::api::UpdateMode;
    use mnemonic::core::embedding::CountingSink;

    for &engine_batch in engine_batches {
        let mut engine = Mnemonic::new(
            query.clone(),
            Box::new(LabelEdgeMatcher),
            Box::new(Isomorphism),
            mnemonic::core::engine::EngineConfig {
                update_mode: if engine_batch <= 1 {
                    UpdateMode::PerEdge
                } else {
                    UpdateMode::Batched(engine_batch)
                },
                ..mnemonic::core::engine::EngineConfig::sequential()
            },
        );
        let oracle = NaiveMatcher::new(OracleSemantics::Isomorphism);
        let mut shadow = StreamingGraph::new();
        let sink = CountingSink::new();

        for (i, batch) in batches.iter().enumerate() {
            for e in batch {
                engine.push_event(*e, &sink);
                if e.is_insert() {
                    shadow.insert_edge(EdgeTriple::with_timestamp(
                        e.src,
                        e.dst,
                        e.label,
                        e.timestamp,
                    ));
                } else {
                    let _ = shadow.delete_matching(e.src, e.dst, e.label);
                }
            }
            engine.flush_pending(&sink);
            assert_eq!(engine.pending_events(), 0, "flush left events behind");

            let net = sink.positive() - sink.negative();
            let expected = oracle.count(&shadow, &query) as u64;
            assert_eq!(
                net, expected,
                "engine batch {engine_batch}, snapshot {i}: net match count diverged from the oracle"
            );
        }
    }
}

fn random_insert_only_batches(
    rng: &mut StdRng,
    vertices: u32,
    labels: u16,
    batches: usize,
    batch_size: usize,
) -> Vec<Vec<StreamEvent>> {
    (0..batches)
        .map(|b| {
            (0..batch_size)
                .map(|i| {
                    let src = rng.gen_range(0..vertices);
                    let mut dst = rng.gen_range(0..vertices);
                    if dst == src {
                        dst = (dst + 1) % vertices;
                    }
                    StreamEvent::insert(src, dst, rng.gen_range(0..labels))
                        .at((b * batch_size + i) as u64)
                })
                .collect()
        })
        .collect()
}

fn random_mixed_batches(
    rng: &mut StdRng,
    vertices: u32,
    labels: u16,
    batches: usize,
    batch_size: usize,
    delete_prob: f64,
) -> Vec<Vec<StreamEvent>> {
    let mut live: Vec<(u32, u32, u16)> = Vec::new();
    let mut ts = 0u64;
    (0..batches)
        .map(|_| {
            (0..batch_size)
                .map(|_| {
                    ts += 1;
                    if !live.is_empty() && rng.gen_bool(delete_prob) {
                        let idx = rng.gen_range(0..live.len());
                        let (s, d, l) = live.swap_remove(idx);
                        StreamEvent::delete(s, d, l).at(ts)
                    } else {
                        let src = rng.gen_range(0..vertices);
                        let mut dst = rng.gen_range(0..vertices);
                        if dst == src {
                            dst = (dst + 1) % vertices;
                        }
                        let label = rng.gen_range(0..labels);
                        live.push((src, dst, label));
                        StreamEvent::insert(src, dst, label).at(ts)
                    }
                })
                .collect()
        })
        .collect()
}

#[test]
fn triangle_isomorphism_matches_oracle_on_insert_only_stream() {
    let mut rng = StdRng::seed_from_u64(11);
    let batches = random_insert_only_batches(&mut rng, 12, 1, 6, 10);
    run_differential(patterns::triangle(), batches, true);
}

#[test]
fn triangle_isomorphism_matches_oracle_with_deletions() {
    let mut rng = StdRng::seed_from_u64(12);
    let batches = random_mixed_batches(&mut rng, 10, 1, 8, 8, 0.3);
    run_differential(patterns::triangle(), batches, true);
}

#[test]
fn path_query_matches_oracle_with_labels_and_deletions() {
    let mut rng = StdRng::seed_from_u64(13);
    let batches = random_mixed_batches(&mut rng, 10, 3, 6, 8, 0.25);
    run_differential(patterns::path(3), batches, true);
}

#[test]
fn rectangle_query_matches_oracle() {
    let mut rng = StdRng::seed_from_u64(14);
    let batches = random_mixed_batches(&mut rng, 9, 1, 5, 8, 0.2);
    run_differential(patterns::rectangle(), batches, true);
}

#[test]
fn star_query_matches_oracle_on_parallel_edge_heavy_stream() {
    // Small vertex set forces many parallel edges, exercising the multigraph
    // id handling the paper stresses in Observation #2.
    let mut rng = StdRng::seed_from_u64(15);
    let batches = random_mixed_batches(&mut rng, 5, 2, 6, 8, 0.3);
    run_differential(patterns::star(3), batches, true);
}

#[test]
fn homomorphism_matches_oracle() {
    let mut rng = StdRng::seed_from_u64(16);
    let batches = random_mixed_batches(&mut rng, 8, 1, 5, 6, 0.2);
    run_differential(patterns::path(3), batches, false);
}

#[test]
fn dual_triangle_matches_oracle() {
    let mut rng = StdRng::seed_from_u64(17);
    let batches = random_insert_only_batches(&mut rng, 8, 1, 5, 8);
    run_differential(patterns::dual_triangle(), batches, true);
}

#[test]
fn batched_path_matches_oracle_on_mixed_streams() {
    let mut rng = StdRng::seed_from_u64(19);
    let batches = random_mixed_batches(&mut rng, 10, 1, 8, 8, 0.3);
    // Per-edge, sub-boundary batches (several auto-flushes between
    // comparison points) and a large batch drained only by the boundary
    // flush.
    run_batched_differential(patterns::triangle(), batches, &[1, 3, 8, 64]);
}

#[test]
fn batched_path_matches_oracle_on_path_query() {
    let mut rng = StdRng::seed_from_u64(20);
    let batches = random_mixed_batches(&mut rng, 10, 2, 6, 10, 0.25);
    run_batched_differential(patterns::path(3), batches, &[1, 7]);
}

#[test]
fn batched_path_matches_oracle_on_parallel_edge_heavy_stream() {
    let mut rng = StdRng::seed_from_u64(21);
    let batches = random_mixed_batches(&mut rng, 5, 2, 6, 8, 0.3);
    run_batched_differential(patterns::star(3), batches, &[1, 4, 16]);
}

#[test]
fn labelled_query_matches_oracle() {
    // Labels on both vertices and edges: vertices keep wildcard labels in the
    // stream, so only edge labels constrain here.
    let mut rng = StdRng::seed_from_u64(18);
    let batches = random_mixed_batches(&mut rng, 10, 4, 6, 8, 0.25);
    let query = patterns::labelled_path(
        &[
            mnemonic::graph::ids::WILDCARD_VERTEX_LABEL.0,
            mnemonic::graph::ids::WILDCARD_VERTEX_LABEL.0,
            mnemonic::graph::ids::WILDCARD_VERTEX_LABEL.0,
        ],
        &[0, 1],
    );
    run_differential(query, batches, true);
}
