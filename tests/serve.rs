//! The pipelined ingest front-end, differentially and property-based.
//!
//! 1. The pipelined (overlapped) broadcast schedule must be
//!    embedding-for-embedding identical to the synchronous path — per-edge
//!    and batched modes, deletion batches included, trailing-partial-batch
//!    drain included.
//! 2. The bounded MPSC ring must deliver every event exactly once and in
//!    per-producer order under concurrent producers, including under
//!    back-pressure (capacity far below the event count).
//! 3. The end-to-end serve path (concurrent producers → ring → pipelined
//!    broadcast) must reach the same final embeddings as a synchronous
//!    oracle.

use mnemonic::core::api::{LabelEdgeMatcher, UpdateMode};
use mnemonic::core::embedding::CompleteEmbedding;
use mnemonic::core::engine::EngineConfig;
use mnemonic::core::ingest::{BackpressurePolicy, IngestQueue};
use mnemonic::core::session::QueryHandle;
use mnemonic::core::shard::ShardedSession;
use mnemonic::core::variants::Isomorphism;
use mnemonic::core::MnemonicError;
use mnemonic::query::patterns;
use mnemonic::query::query_graph::QueryGraph;
use mnemonic::stream::event::StreamEvent;
use mnemonic::stream::source::{EventSource, Partition, VecSource};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHARDS: usize = 3;

/// Same deterministic mixed insert/delete stream as `tests/sharding.rs`.
fn mixed_stream(seed: u64, vertices: u32, labels: u16, events: usize) -> Vec<StreamEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<(u32, u32, u16)> = Vec::new();
    let mut out = Vec::with_capacity(events);
    for ts in 0..events as u64 {
        if !live.is_empty() && rng.gen_bool(0.25) {
            let idx = rng.gen_range(0..live.len());
            let (s, d, l) = live.swap_remove(idx);
            out.push(StreamEvent::delete(s, d, l).at(ts));
        } else {
            let src = rng.gen_range(0..vertices);
            let mut dst = rng.gen_range(0..vertices);
            if dst == src {
                dst = (dst + 1) % vertices;
            }
            let label = rng.gen_range(0..labels);
            live.push((src, dst, label));
            out.push(StreamEvent::insert(src, dst, label).at(ts));
        }
    }
    out
}

fn query_set() -> Vec<QueryGraph> {
    vec![
        patterns::triangle(),
        patterns::path(3),
        patterns::rectangle(),
        patterns::dual_triangle(),
    ]
}

fn build_session(batch: usize, parallel: bool) -> (ShardedSession, Vec<QueryHandle>) {
    let base = if parallel {
        EngineConfig::default()
    } else {
        EngineConfig::sequential()
    };
    let mut session = ShardedSession::builder()
        .shards(SHARDS)
        .config(EngineConfig {
            update_mode: UpdateMode::from_batch_size(batch),
            ..base
        })
        .build()
        .expect("valid sharded config");
    let handles: Vec<QueryHandle> = query_set()
        .into_iter()
        .map(|q| {
            session
                .register_query(q, Box::new(LabelEdgeMatcher), Box::new(Isomorphism))
                .expect("connected query")
        })
        .collect();
    (session, handles)
}

type Drained = Vec<(Vec<CompleteEmbedding>, Vec<CompleteEmbedding>)>;

fn drain_sorted(handles: &[QueryHandle]) -> Drained {
    handles
        .iter()
        .map(|h| {
            let batch = h.drain();
            let mut pos = batch.positive;
            let mut neg = batch.negative;
            pos.sort();
            neg.sort();
            (pos, neg)
        })
        .collect()
}

/// Pipelined vs synchronous on one configuration: identical per-batch
/// delta counts and identical drained embeddings, positive and negative.
fn assert_pipelined_matches_sync(events: &[StreamEvent], batch: usize, parallel: bool) {
    let (mut sync_session, sync_handles) = build_session(batch, parallel);
    let sync_batches = sync_session
        .run_events(events.iter().copied())
        .expect("synchronous replay succeeds");
    let want = drain_sorted(&sync_handles);

    let (mut piped_session, piped_handles) = build_session(batch, parallel);
    let run = piped_session
        .run_pipelined(events.iter().copied())
        .expect("pipelined replay succeeds");
    let got = drain_sorted(&piped_handles);

    assert_eq!(run.batch_count(), sync_batches.len(), "batch boundaries");
    for (k, (p, s)) in run.batches().iter().zip(&sync_batches).enumerate() {
        assert_eq!(p.result.insertions, s.insertions, "insertions, batch {k}");
        assert_eq!(p.result.deletions, s.deletions, "deletions, batch {k}");
        assert_eq!(
            p.result.total_new_embeddings(),
            s.total_new_embeddings(),
            "new embeddings, batch {k}"
        );
        assert_eq!(
            p.result.total_removed_embeddings(),
            s.total_removed_embeddings(),
            "removed embeddings, batch {k}"
        );
    }
    assert_eq!(got, want, "drained embeddings (batch {batch})");
}

#[test]
fn pipelined_schedule_is_embedding_exact_per_edge_and_batched() {
    // Deletion-heavy stream whose length is deliberately not a multiple of
    // any batch size, so the trailing-partial drain is exercised too.
    let events = mixed_stream(42, 10, 2, 157);
    for parallel in [false, true] {
        for batch in [1usize, 7, 64] {
            assert_pipelined_matches_sync(&events, batch, parallel);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random streams, batch sizes, and schedules: the overlapped schedule
    /// never changes a single embedding.
    #[test]
    fn pipelined_schedule_is_exact_on_random_streams(
        seed in 0u64..1_000,
        batch_choice in 0usize..3,
        parallel in any::<bool>(),
        len in 40usize..160,
    ) {
        let batch = [1usize, 5, 32][batch_choice];
        let events = mixed_stream(seed, 8, 2, len);
        assert_pipelined_matches_sync(&events, batch, parallel);
    }

    /// Exactly-once, in-order delivery through the bounded ring under
    /// concurrent producers and real back-pressure (the ring is much
    /// smaller than the event count, so producers must park and resume).
    #[test]
    fn ring_delivers_exactly_once_in_order_under_concurrency(
        producers in 2usize..5,
        per_producer in 10usize..120,
        capacity_choice in 0usize..3,
    ) {
        let capacity = [2usize, 8, 64][capacity_choice];
        let (tx, mut rx) = IngestQueue::bounded(capacity, BackpressurePolicy::Block);
        let received: Vec<(u32, u32)> = std::thread::scope(|s| {
            for p in 0..producers {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..per_producer {
                        // Encode (producer, sequence) in the edge endpoints.
                        tx.push(StreamEvent::insert(p as u32, i as u32, 0))
                            .expect("consumer stays alive");
                    }
                });
            }
            drop(tx); // producers close the stream when the last clone drops
            let mut got = Vec::with_capacity(producers * per_producer);
            while let Some(e) = rx.recv() {
                got.push((e.src.0, e.dst.0));
            }
            got
        });
        prop_assert_eq!(received.len(), producers * per_producer, "exactly once");
        let mut next = vec![0u32; producers];
        for (p, seq) in received {
            prop_assert_eq!(seq, next[p as usize], "per-producer order");
            next[p as usize] += 1;
        }
        prop_assert!(rx.stats().capacity <= 64, "memory stayed bounded");
    }
}

/// End-to-end: four producer threads partition one insert-only stream,
/// push it through a small bounded ring, and the pipelined serve loop must
/// land on exactly the synchronous oracle's embeddings. (Insert-only makes
/// the final embedding set independent of the producers' interleaving.)
#[test]
fn serve_from_concurrent_producers_matches_oracle() {
    const PRODUCERS: usize = 4;
    let events: Vec<StreamEvent> = mixed_stream(7, 9, 2, 180)
        .into_iter()
        .filter(|e| e.is_insert())
        .collect();

    // Edge IDs are assigned in arrival order, which the producer
    // interleaving scrambles — so the oracle comparison is on the vertex
    // mappings (the paper's notion of an embedding), as a multiset.
    let vertex_multisets = |drained: Drained| -> Vec<Vec<Vec<u32>>> {
        drained
            .into_iter()
            .map(|(pos, _)| {
                let mut v: Vec<Vec<u32>> = pos
                    .into_iter()
                    .map(|e| e.vertices.iter().map(|v| v.0).collect())
                    .collect();
                v.sort();
                v
            })
            .collect()
    };

    let (mut oracle_session, oracle_handles) = build_session(8, false);
    oracle_session
        .run_events(events.iter().copied())
        .expect("oracle replay succeeds");
    let want = vertex_multisets(drain_sorted(&oracle_handles));

    let (mut session, handles) = build_session(8, true);
    let (tx, rx) = IngestQueue::bounded(32, BackpressurePolicy::Block);
    let feeds = Partition::split(VecSource::new(events.clone()), PRODUCERS);
    let run = std::thread::scope(|s| {
        for mut feed in feeds {
            let tx = tx.clone();
            s.spawn(move || {
                for event in feed.events() {
                    tx.push(event).expect("server stays up");
                }
            });
        }
        drop(tx);
        session.serve(rx).expect("serve succeeds")
    });

    let total: u64 = run
        .batches()
        .iter()
        .map(|b| b.result.insertions as u64)
        .sum();
    assert_eq!(total, events.len() as u64, "every event exactly once");
    assert_eq!(
        vertex_multisets(drain_sorted(&handles)),
        want,
        "final embeddings match oracle"
    );
    assert!(run.latency_percentile(50.0).unwrap() <= run.latency_percentile(99.0).unwrap());
}

/// A panic inside one lane (a poisoned user matcher) must surface as a
/// typed error from the pipelined driver — feeder stopped, every lane
/// joined, no hang and no abort — exactly like the synchronous path.
#[test]
fn pipelined_lane_panic_is_typed_and_does_not_hang() {
    use mnemonic::core::api::{FnEdgeMatcher, MatcherContext};
    use mnemonic::graph::edge::Edge;
    use mnemonic::graph::ids::QueryEdgeId;

    for parallel in [false, true] {
        let base = if parallel {
            EngineConfig::default()
        } else {
            EngineConfig::sequential()
        };
        let mut session = ShardedSession::builder()
            .shards(2)
            .config(EngineConfig {
                update_mode: UpdateMode::from_batch_size(2),
                ..base
            })
            .build()
            .expect("valid sharded config");
        session
            .register_query(
                patterns::path(2),
                Box::new(FnEdgeMatcher(
                    |_ctx: &MatcherContext<'_>, _q: QueryEdgeId, e: &Edge| {
                        assert!(e.src.0 != 3, "poisoned matcher");
                        true
                    },
                )),
                Box::new(Isomorphism),
            )
            .expect("connected query");
        session
            .register_query(
                patterns::path(2),
                Box::new(LabelEdgeMatcher),
                Box::new(Isomorphism),
            )
            .expect("connected query");

        let events = vec![
            StreamEvent::insert(0, 1, 0),
            StreamEvent::insert(1, 2, 0),
            StreamEvent::insert(3, 4, 0), // src 3 trips the poisoned matcher
            StreamEvent::insert(4, 5, 0),
        ];
        let err = session.run_pipelined(events).unwrap_err();
        assert!(
            matches!(err, MnemonicError::ShardPanicked(_)),
            "expected ShardPanicked, got {err:?} (parallel={parallel})"
        );
    }
}
