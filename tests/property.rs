//! Property-based tests (proptest) over the core data structures and the
//! engine's end-to-end invariants.

use mnemonic::baselines::recompute::{NaiveMatcher, OracleSemantics};
use mnemonic::core::api::LabelEdgeMatcher;
use mnemonic::core::embedding::CollectingSink;
use mnemonic::core::engine::{EngineConfig, Mnemonic};
use mnemonic::core::variants::Isomorphism;
use mnemonic::graph::edge::EdgeTriple;
use mnemonic::graph::ids::{EdgeId, EdgeLabel, VertexId};
use mnemonic::graph::multigraph::StreamingGraph;
use mnemonic::query::masking::MaskTable;
use mnemonic::query::matching_order::MatchingOrderSet;
use mnemonic::query::patterns;
use mnemonic::query::query_tree::QueryTree;
use mnemonic::query::root::select_root_by_degree;
use mnemonic::stream::event::StreamEvent;
use mnemonic::stream::snapshot::Snapshot;
use proptest::prelude::*;
use std::collections::HashSet;

/// A random edit script over a small vertex universe: true = insert a random
/// edge, false = delete a random live edge (if any).
fn edit_script() -> impl Strategy<Value = Vec<(bool, u32, u32, u16)>> {
    prop::collection::vec((any::<bool>(), 0u32..8, 0u32..8, 0u16..2), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Edge-id recycling never aliases a live edge and placeholders never
    /// exceed the historical peak of live edges.
    #[test]
    fn recycling_never_aliases_live_edges(script in edit_script()) {
        let mut graph = StreamingGraph::new();
        let mut live: Vec<EdgeId> = Vec::new();
        let mut peak_live = 0usize;
        for (insert, src, dst, label) in script {
            if insert || live.is_empty() {
                let id = graph.insert_edge(EdgeTriple::new(
                    VertexId(src),
                    VertexId(dst.max(1) % 8),
                    EdgeLabel(label),
                ));
                prop_assert!(!live.contains(&id), "recycled id {id:?} still live");
                live.push(id);
            } else {
                let idx = (src as usize) % live.len();
                let id = live.swap_remove(idx);
                graph.delete_edge(id).unwrap();
            }
            peak_live = peak_live.max(live.len());
            prop_assert_eq!(graph.live_edge_count(), live.len());
            // Non-monotonic index size: placeholders bounded by the peak of
            // concurrently live edges... plus slack because recycling is
            // per-source-vertex (an id freed by vertex A cannot serve vertex B).
            prop_assert!(graph.placeholder_count() as u64 <= graph.stats().total_insertions);
        }
        // Every live id maps to an alive record and ids are unique.
        let unique: HashSet<_> = live.iter().collect();
        prop_assert_eq!(unique.len(), live.len());
        for id in live {
            prop_assert!(graph.is_alive(id));
        }
    }

    /// The snapshot generator partitions the stream: every event appears in
    /// exactly one snapshot, in order.
    #[test]
    fn snapshot_generator_partitions_stream(
        events in prop::collection::vec((0u32..10, 0u32..10, 0u16..3, any::<bool>()), 0..200),
        batch in 1usize..40,
    ) {
        use mnemonic::stream::config::StreamConfig;
        use mnemonic::stream::generator::SnapshotGenerator;
        use mnemonic::stream::source::VecSource;
        let stream: Vec<StreamEvent> = events
            .iter()
            .map(|&(s, d, l, del)| if del {
                StreamEvent::delete(s, d, l)
            } else {
                StreamEvent::insert(s, d, l)
            })
            .collect();
        let snaps = SnapshotGenerator::new(VecSource::new(stream.clone()), StreamConfig::batches(batch))
            .collect_all();
        let replayed: usize = snaps.iter().map(|s| s.event_count()).sum();
        prop_assert_eq!(replayed, stream.len());
        for s in &snaps {
            prop_assert!(s.event_count() <= batch);
        }
        // Ids are consecutive from zero.
        for (i, s) in snaps.iter().enumerate() {
            prop_assert_eq!(s.id, i as u64);
        }
    }

    /// Matching orders are valid for arbitrary (small) random connected
    /// queries: every tree edge covered exactly once, anchors bound before
    /// use, every non-tree edge verified exactly once.
    #[test]
    fn matching_orders_are_valid_for_random_queries(
        extra_edges in prop::collection::vec((0u16..6, 0u16..6), 0..6),
        n in 2u16..7,
    ) {
        use mnemonic::query::query_graph::QueryGraph;
        let mut q = QueryGraph::new();
        for _ in 0..n {
            q.add_wildcard_vertex();
        }
        // A path backbone keeps the query connected.
        for i in 0..n - 1 {
            q.add_wildcard_edge(
                mnemonic::graph::ids::QueryVertexId(i),
                mnemonic::graph::ids::QueryVertexId(i + 1),
            );
        }
        for (a, b) in extra_edges {
            let (a, b) = (a % n, b % n);
            if a != b {
                q.add_wildcard_edge(
                    mnemonic::graph::ids::QueryVertexId(a),
                    mnemonic::graph::ids::QueryVertexId(b),
                );
            }
        }
        let root = select_root_by_degree(&q);
        let tree = QueryTree::build(&q, root);
        let orders = MatchingOrderSet::build(&q, &tree);
        for qe in q.edge_ids() {
            prop_assert!(orders.for_start(qe).validate(&q, &tree).is_ok());
        }
        prop_assert!(orders.full().validate(&q, &tree).is_ok());
        // The mask table accepts exactly one start for any batch subset.
        let mask = MaskTable::new(q.edge_count());
        prop_assert!(!mask.is_masked(mnemonic::graph::ids::QueryEdgeId(0), mnemonic::graph::ids::QueryEdgeId(1)) || q.edge_count() > 1);
    }

    /// End-to-end: after replaying a random insert-only stream in random
    /// batch sizes, the set of reported triangle embeddings equals the
    /// oracle's result on the final graph, with no duplicates.
    #[test]
    fn engine_matches_oracle_on_random_insert_streams(
        edges in prop::collection::vec((0u32..7, 0u32..7), 1..40),
        batch in 1usize..10,
    ) {
        let query = patterns::triangle();
        let mut engine = Mnemonic::new(
            query.clone(),
            Box::new(LabelEdgeMatcher),
            Box::new(Isomorphism),
            EngineConfig::sequential(),
        );
        let sink = CollectingSink::new();
        let mut shadow = StreamingGraph::new();
        let events: Vec<StreamEvent> = edges
            .iter()
            .map(|&(s, d)| StreamEvent::insert(s, if s == d { (d + 1) % 7 } else { d }, 0))
            .collect();
        for (i, chunk) in events.chunks(batch).enumerate() {
            engine.apply_snapshot(
                &Snapshot {
                    id: i as u64,
                    insertions: chunk.to_vec(),
                    ..Default::default()
                },
                &sink,
            );
            for e in chunk {
                shadow.insert_edge(EdgeTriple::new(e.src, e.dst, e.label));
            }
        }
        let reported = sink.positive();
        let unique: HashSet<_> = reported.iter().cloned().collect();
        prop_assert_eq!(unique.len(), reported.len(), "duplicate embeddings reported");
        let oracle = NaiveMatcher::new(OracleSemantics::Isomorphism);
        prop_assert_eq!(reported.len(), oracle.count(&shadow, &query));
    }
}
