//! Property-based tests (proptest) over the core data structures and the
//! engine's end-to-end invariants, including the work-stealing scheduler's
//! injector/deque primitives and the DEBI bitmap index.

use mnemonic::baselines::recompute::{NaiveMatcher, OracleSemantics};
use mnemonic::core::api::LabelEdgeMatcher;
use mnemonic::core::embedding::CollectingSink;
use mnemonic::core::engine::{EngineConfig, Mnemonic};
use mnemonic::core::variants::Isomorphism;
use mnemonic::graph::edge::EdgeTriple;
use mnemonic::graph::ids::{EdgeId, EdgeLabel, VertexId};
use mnemonic::graph::multigraph::StreamingGraph;
use mnemonic::query::masking::MaskTable;
use mnemonic::query::matching_order::MatchingOrderSet;
use mnemonic::query::patterns;
use mnemonic::query::query_tree::QueryTree;
use mnemonic::query::root::select_root_by_degree;
use mnemonic::stream::event::StreamEvent;
use mnemonic::stream::snapshot::Snapshot;
use proptest::prelude::*;
use std::collections::HashSet;

/// A random edit script over a small vertex universe: true = insert a random
/// edge, false = delete a random live edge (if any).
fn edit_script() -> impl Strategy<Value = Vec<(bool, u32, u32, u16)>> {
    prop::collection::vec((any::<bool>(), 0u32..8, 0u32..8, 0u16..2), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Edge-id recycling never aliases a live edge and placeholders never
    /// exceed the historical peak of live edges.
    #[test]
    fn recycling_never_aliases_live_edges(script in edit_script()) {
        let mut graph = StreamingGraph::new();
        let mut live: Vec<EdgeId> = Vec::new();
        let mut peak_live = 0usize;
        for (insert, src, dst, label) in script {
            if insert || live.is_empty() {
                let id = graph.insert_edge(EdgeTriple::new(
                    VertexId(src),
                    VertexId(dst.max(1) % 8),
                    EdgeLabel(label),
                ));
                prop_assert!(!live.contains(&id), "recycled id {id:?} still live");
                live.push(id);
            } else {
                let idx = (src as usize) % live.len();
                let id = live.swap_remove(idx);
                graph.delete_edge(id).unwrap();
            }
            peak_live = peak_live.max(live.len());
            prop_assert_eq!(graph.live_edge_count(), live.len());
            // Non-monotonic index size: placeholders bounded by the peak of
            // concurrently live edges... plus slack because recycling is
            // per-source-vertex (an id freed by vertex A cannot serve vertex B).
            prop_assert!(graph.placeholder_count() as u64 <= graph.stats().total_insertions);
        }
        // Every live id maps to an alive record and ids are unique.
        let unique: HashSet<_> = live.iter().collect();
        prop_assert_eq!(unique.len(), live.len());
        for id in live {
            prop_assert!(graph.is_alive(id));
        }
    }

    /// The snapshot generator partitions the stream: every event appears in
    /// exactly one snapshot, in order.
    #[test]
    fn snapshot_generator_partitions_stream(
        events in prop::collection::vec((0u32..10, 0u32..10, 0u16..3, any::<bool>()), 0..200),
        batch in 1usize..40,
    ) {
        use mnemonic::stream::config::StreamConfig;
        use mnemonic::stream::generator::SnapshotGenerator;
        use mnemonic::stream::source::VecSource;
        let stream: Vec<StreamEvent> = events
            .iter()
            .map(|&(s, d, l, del)| if del {
                StreamEvent::delete(s, d, l)
            } else {
                StreamEvent::insert(s, d, l)
            })
            .collect();
        let snaps = SnapshotGenerator::new(VecSource::new(stream.clone()), StreamConfig::batches(batch))
            .collect_all();
        let replayed: usize = snaps.iter().map(|s| s.event_count()).sum();
        prop_assert_eq!(replayed, stream.len());
        for s in &snaps {
            prop_assert!(s.event_count() <= batch);
        }
        // Ids are consecutive from zero.
        for (i, s) in snaps.iter().enumerate() {
            prop_assert_eq!(s.id, i as u64);
        }
    }

    /// Matching orders are valid for arbitrary (small) random connected
    /// queries: every tree edge covered exactly once, anchors bound before
    /// use, every non-tree edge verified exactly once.
    #[test]
    fn matching_orders_are_valid_for_random_queries(
        extra_edges in prop::collection::vec((0u16..6, 0u16..6), 0..6),
        n in 2u16..7,
    ) {
        use mnemonic::query::query_graph::QueryGraph;
        let mut q = QueryGraph::new();
        for _ in 0..n {
            q.add_wildcard_vertex();
        }
        // A path backbone keeps the query connected.
        for i in 0..n - 1 {
            q.add_wildcard_edge(
                mnemonic::graph::ids::QueryVertexId(i),
                mnemonic::graph::ids::QueryVertexId(i + 1),
            );
        }
        for (a, b) in extra_edges {
            let (a, b) = (a % n, b % n);
            if a != b {
                q.add_wildcard_edge(
                    mnemonic::graph::ids::QueryVertexId(a),
                    mnemonic::graph::ids::QueryVertexId(b),
                );
            }
        }
        let root = select_root_by_degree(&q);
        let tree = QueryTree::build(&q, root);
        let orders = MatchingOrderSet::build(&q, &tree);
        for qe in q.edge_ids() {
            prop_assert!(orders.for_start(qe).validate(&q, &tree).is_ok());
        }
        prop_assert!(orders.full().validate(&q, &tree).is_ok());
        // The mask table accepts exactly one start for any batch subset.
        let mask = MaskTable::new(q.edge_count());
        prop_assert!(!mask.is_masked(mnemonic::graph::ids::QueryEdgeId(0), mnemonic::graph::ids::QueryEdgeId(1)) || q.edge_count() > 1);
    }

    /// End-to-end: after replaying a random insert-only stream in random
    /// batch sizes, the set of reported triangle embeddings equals the
    /// oracle's result on the final graph, with no duplicates.
    #[test]
    fn engine_matches_oracle_on_random_insert_streams(
        edges in prop::collection::vec((0u32..7, 0u32..7), 1..40),
        batch in 1usize..10,
    ) {
        let query = patterns::triangle();
        let mut engine = Mnemonic::new(
            query.clone(),
            Box::new(LabelEdgeMatcher),
            Box::new(Isomorphism),
            EngineConfig::sequential(),
        );
        let sink = CollectingSink::new();
        let mut shadow = StreamingGraph::new();
        let events: Vec<StreamEvent> = edges
            .iter()
            .map(|&(s, d)| StreamEvent::insert(s, if s == d { (d + 1) % 7 } else { d }, 0))
            .collect();
        for (i, chunk) in events.chunks(batch).enumerate() {
            engine.apply_snapshot(
                &Snapshot {
                    id: i as u64,
                    insertions: chunk.to_vec(),
                    ..Default::default()
                },
                &sink,
            );
            for e in chunk {
                shadow.insert_edge(EdgeTriple::new(e.src, e.dst, e.label));
            }
        }
        let reported = sink.positive();
        let unique: HashSet<_> = reported.iter().cloned().collect();
        prop_assert_eq!(unique.len(), reported.len(), "duplicate embeddings reported");
        let oracle = NaiveMatcher::new(OracleSemantics::Isomorphism);
        prop_assert_eq!(reported.len(), oracle.count(&shadow, &query));
    }

    /// Work-stealing queues: tasks pushed into the injector are executed
    /// exactly once, no matter how concurrent thieves interleave their
    /// local pops, injector shares and steal-half raids.
    #[test]
    fn injector_and_deques_deliver_each_task_exactly_once(
        tasks in 1usize..300,
        workers in 2usize..5,
    ) {
        use rayon::sched::{Injector, WorkerQueue};
        use std::sync::atomic::{AtomicUsize, Ordering};

        let injector: Injector<u64> = Injector::new();
        injector.push_batch((0..tasks as u64).collect::<Vec<_>>());
        let queues: Vec<WorkerQueue<u64>> = (0..workers).map(|_| WorkerQueue::new()).collect();
        let executed_count = AtomicUsize::new(0);
        let mut executed_per_worker: Vec<Vec<u64>> = Vec::new();

        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for me in 0..workers {
                let injector = &injector;
                let queues = &queues;
                let executed_count = &executed_count;
                handles.push(scope.spawn(move || {
                    let mut ran: Vec<u64> = Vec::new();
                    while executed_count.load(Ordering::Acquire) < tasks {
                        // The worker loop's exact discipline: local LIFO pop,
                        // then a share of the injector, then steal-half.
                        let task = queues[me].pop().or_else(|| {
                            let mut share = injector.pop_share(queues.len());
                            if share.is_empty() {
                                (1..queues.len())
                                    .map(|k| (me + k) % queues.len())
                                    .find_map(|victim| {
                                        queues[me].steal_half_from(&queues[victim])
                                    })
                            } else {
                                let first = share.remove(0);
                                queues[me].extend(share);
                                Some(first)
                            }
                        });
                        match task {
                            Some(t) => {
                                ran.push(t);
                                executed_count.fetch_add(1, Ordering::AcqRel);
                            }
                            None => std::thread::yield_now(),
                        }
                    }
                    ran
                }));
            }
            for handle in handles {
                executed_per_worker.push(handle.join().expect("worker panicked"));
            }
        });

        let mut all: Vec<u64> = executed_per_worker.into_iter().flatten().collect();
        all.sort_unstable();
        let expected: Vec<u64> = (0..tasks as u64).collect();
        prop_assert_eq!(all, expected, "every task exactly once");
        prop_assert!(injector.is_empty());
        prop_assert!(queues.iter().all(|q| q.is_empty()));
    }

    /// Pool-level exactly-once: `par_iter().for_each` through the
    /// work-stealing pool hits every element exactly once for arbitrary
    /// lengths and widths.
    #[test]
    fn pool_for_each_visits_each_element_exactly_once(
        len in 0usize..600,
        width in 1usize..6,
    ) {
        use rayon::prelude::*;
        use std::sync::atomic::{AtomicUsize, Ordering};
        let data: Vec<usize> = (0..len).collect();
        let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(width)
            .build()
            .unwrap();
        pool.install(|| {
            data.par_iter().for_each(|&i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    /// DEBI set/clear/read round-trip: the bitmap agrees with a naive
    /// shadow set after any interleaving of bit writes, row overwrites and
    /// row clears, and the occupancy stats count exactly the live bits.
    #[test]
    fn debi_round_trips_against_a_shadow_set(
        width_seed in 1usize..65,
        ops in prop::collection::vec((0usize..24, 0u16..64, any::<bool>(), 0u32..12), 1..200),
    ) {
        use mnemonic::core::debi::Debi;
        use std::collections::HashSet;

        let width = width_seed; // 1..=64
        let mut debi = Debi::new(width);
        debi.ensure_rows(24);
        debi.ensure_roots(130);
        let mut shadow: HashSet<(usize, u16)> = HashSet::new();

        for (row, col_seed, value, action) in ops {
            let col = col_seed % width as u16;
            match action {
                // Bias towards single-bit writes; sprinkle row clears,
                // whole-row writes and root-bit flips in between.
                0..=7 => {
                    debi.set(row, col, value);
                    if value {
                        shadow.insert((row, col));
                    } else {
                        shadow.remove(&(row, col));
                    }
                }
                8 | 9 => {
                    debi.clear_row(row);
                    shadow.retain(|&(r, _)| r != row);
                }
                10 => {
                    let bits = (col_seed as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    debi.write_row(row, bits);
                    shadow.retain(|&(r, _)| r != row);
                    for c in 0..width as u16 {
                        if bits & (1u64 << c) != 0 {
                            shadow.insert((row, c));
                        }
                    }
                }
                _ => {
                    let v = (row * 5 + col as usize) % 130;
                    debi.set_root(v, value);
                    prop_assert_eq!(debi.is_root(v), value);
                }
            }
            prop_assert_eq!(debi.get(row, col), shadow.contains(&(row, col)));
        }

        // Full read-back: every row equals the shadow's view bit for bit.
        for row in 0..24 {
            let mut expected = 0u64;
            for &(r, c) in &shadow {
                if r == row {
                    expected |= 1u64 << c;
                }
            }
            prop_assert_eq!(debi.row(row), expected, "row {} diverged", row);
            prop_assert_eq!(debi.any(row), expected != 0);
        }
        prop_assert_eq!(debi.stats().set_bits, shadow.len() as u64);
    }
}
