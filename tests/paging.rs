//! Differential tests for the paged storage tier: a session whose spill
//! tier runs through the page cache must be embedding-for-embedding
//! identical to the default in-memory session on the same stream — per-edge
//! and batched modes, with deletions, with the in-memory window small
//! enough that most of the stream is evicted through the spill path.
//!
//! The paged backend sits entirely on the overhead-accounting side of the
//! engine (the matcher reads the in-memory graph), so these tests pin the
//! invariant that turning it on changes *nothing* about results while its
//! cache actually churns (asserted via the published telemetry).

use mnemonic::core::api::{LabelEdgeMatcher, UpdateMode};
use mnemonic::core::embedding::CompleteEmbedding;
use mnemonic::core::session::MnemonicSession;
use mnemonic::core::variants::Isomorphism;
use mnemonic::graph::spill::SpillConfig;
use mnemonic::graph::storage::StorageConfig;
use mnemonic::query::patterns;
use mnemonic::query::query_graph::QueryGraph;
use mnemonic::stream::event::StreamEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn key(e: &CompleteEmbedding) -> (Vec<u32>, Vec<u32>) {
    (
        e.vertices.iter().map(|v| v.0).collect(),
        e.edges.iter().map(|x| x.0).collect(),
    )
}

fn random_stream(
    rng: &mut StdRng,
    vertices: u32,
    events: usize,
    delete_prob: f64,
) -> Vec<StreamEvent> {
    let mut live: Vec<(u32, u32, u16)> = Vec::new();
    let mut out = Vec::with_capacity(events);
    for ts in 0..events as u64 {
        if !live.is_empty() && rng.gen_bool(delete_prob) {
            let idx = rng.gen_range(0..live.len());
            let (s, d, l) = live.swap_remove(idx);
            out.push(StreamEvent::delete(s, d, l).at(ts));
        } else {
            let src = rng.gen_range(0..vertices);
            let mut dst = rng.gen_range(0..vertices);
            if dst == src {
                dst = (dst + 1) % vertices;
            }
            live.push((src, dst, 0));
            out.push(StreamEvent::insert(src, dst, 0).at(ts));
        }
    }
    out
}

/// An embedding key: sorted vertex ids + matched edge ids, order-stable
/// across runs (see `key`).
type EmbeddingKey = (Vec<u32>, Vec<u32>);

/// Run `events` through one session with the given update mode and storage
/// configuration, returning the signed embedding stream of one standing
/// query (positives and negatives, in drain order).
fn run_session(
    query: QueryGraph,
    events: &[StreamEvent],
    mode: UpdateMode,
    storage: Option<StorageConfig>,
) -> (
    Vec<EmbeddingKey>,
    Vec<EmbeddingKey>,
    mnemonic::core::stats::SpillSnapshot,
) {
    let mut builder = MnemonicSession::builder().sequential().update_mode(mode);
    if let Some(storage) = storage {
        builder = builder.storage(storage).spill(SpillConfig {
            // A window far smaller than the stream: almost every edge takes
            // the spill path, and with a tiny buffer it reaches the pages.
            in_memory_window: 16,
            buffer_capacity: 8,
        });
    }
    let mut session = builder.build().expect("session builds");
    let handle = session
        .register_query(query, Box::new(LabelEdgeMatcher), Box::new(Isomorphism))
        .expect("query registers");
    session
        .run_events(events.iter().copied())
        .expect("stream applies");
    let drained = handle.drain();
    (
        drained.positive.iter().map(key).collect(),
        drained.negative.iter().map(key).collect(),
        handle.spill_stats(),
    )
}

/// The core differential: identical signed embedding streams (order
/// included — both sessions are sequential and share the batching rule)
/// between the in-memory default and the paged spill tier.
fn assert_paged_matches_in_memory(query: QueryGraph, events: &[StreamEvent], mode: UpdateMode) {
    let (pos_mem, neg_mem, spill_mem) = run_session(query.clone(), events, mode, None);
    let paged = StorageConfig::paged().page_size(4096).cache_pages(2);
    let (pos_paged, neg_paged, spill_paged) = run_session(query, events, mode, Some(paged));

    assert_eq!(
        pos_mem, pos_paged,
        "paged session diverged on positive embeddings"
    );
    assert_eq!(
        neg_mem, neg_paged,
        "paged session diverged on negative embeddings"
    );
    assert!(
        !spill_mem.enabled,
        "the in-memory reference must not run a spill tier"
    );
    assert!(spill_paged.enabled && spill_paged.paged);
    assert_eq!(spill_paged.io_errors, 0, "paged I/O must be clean");
    assert!(
        spill_paged.edges_on_disk > 0,
        "the window must actually evict through the paged path"
    );
    assert!(
        spill_paged.resident_pages <= 2,
        "resident pages exceeded the configured cache budget"
    );
    assert!(
        spill_paged.compression_ratio() > 1.0,
        "delta-varint pages should beat the flat encoding"
    );
}

#[test]
fn paged_triangle_per_edge_with_deletions_matches_in_memory() {
    let mut rng = StdRng::seed_from_u64(81);
    let events = random_stream(&mut rng, 12, 400, 0.25);
    assert_paged_matches_in_memory(patterns::triangle(), &events, UpdateMode::PerEdge);
}

#[test]
fn paged_triangle_batched_with_deletions_matches_in_memory() {
    let mut rng = StdRng::seed_from_u64(82);
    let events = random_stream(&mut rng, 12, 400, 0.25);
    assert_paged_matches_in_memory(patterns::triangle(), &events, UpdateMode::Batched(16));
}

#[test]
fn paged_path_query_batched_matches_in_memory() {
    let mut rng = StdRng::seed_from_u64(83);
    let events = random_stream(&mut rng, 10, 300, 0.2);
    assert_paged_matches_in_memory(patterns::path(3), &events, UpdateMode::Batched(8));
}

#[test]
fn paged_insert_only_stream_matches_in_memory() {
    let mut rng = StdRng::seed_from_u64(84);
    let events = random_stream(&mut rng, 14, 500, 0.0);
    assert_paged_matches_in_memory(patterns::rectangle(), &events, UpdateMode::Batched(32));
}

/// A paged storage config with no explicit spill config must imply the
/// spill tier (SpillConfig::default) instead of silently running without
/// one.
#[test]
fn paged_storage_alone_implies_spill_tier() {
    let mut session = MnemonicSession::builder()
        .sequential()
        .storage(StorageConfig::paged())
        .build()
        .expect("session builds");
    let handle = session
        .register_query(
            patterns::triangle(),
            Box::new(LabelEdgeMatcher),
            Box::new(Isomorphism),
        )
        .expect("query registers");
    session
        .run_events((0..32).map(|i| StreamEvent::insert(i, i + 1, 0).at(i as u64)))
        .expect("stream applies");
    let spill = handle.spill_stats();
    assert!(spill.enabled && spill.paged);
    assert!(session.spill_stats().is_some());
    // The default window (1M edges) never evicts on 32 events, so the disk
    // side stays empty — but the tier exists and reports.
    assert_eq!(spill.io_errors, 0);
}

/// Window eviction bounds the page-cache footprint even when the stream is
/// much larger than the cache: replay ~10x the cache budget in compressed
/// bytes and check residency never exceeded the configured page count.
#[test]
fn paged_window_eviction_stays_within_cache_budget() {
    let paged = StorageConfig::paged().page_size(4096).cache_pages(2);
    let mut session = MnemonicSession::builder()
        .sequential()
        .update_mode(UpdateMode::Batched(64))
        .storage(paged)
        .spill(SpillConfig {
            in_memory_window: 8,
            buffer_capacity: 4,
        })
        .build()
        .expect("session builds");
    let handle = session
        .register_query(
            patterns::triangle(),
            Box::new(LabelEdgeMatcher),
            Box::new(Isomorphism),
        )
        .expect("query registers");
    let mut rng = StdRng::seed_from_u64(85);
    let events = random_stream(&mut rng, 512, 16_000, 0.1);
    session
        .run_events(events.iter().copied())
        .expect("stream applies");
    let spill = handle.spill_stats();
    assert!(
        spill.edges_on_disk as usize > 12_000,
        "stream mostly spilled"
    );
    assert!(
        spill.compressed_bytes > 10 * 2 * 4096,
        "the replay must cover ~10x the cache budget (got {} compressed bytes)",
        spill.compressed_bytes
    );
    assert!(spill.resident_pages <= 2);
    assert!(spill.cache.evictions > 0, "the cache must have churned");
    // The page-cache counters surface through graph_stats too.
    assert_eq!(session.graph_stats().page_cache, spill.cache);
}
