//! Session-level integration tests: a multi-query [`MnemonicSession`] must
//! be indistinguishable, query by query, from running the same queries in
//! independent single-query engines — while ingesting the stream only once.
//!
//! The central check is a 3-query session (triangle, 3-path, and the
//! programmable protocol-0 temporal variant from
//! `examples/programmable_variants.rs`) replayed against 3 independent
//! [`Mnemonic`] engines over the same mixed insert/delete stream, in both
//! per-edge and batched update modes, comparing the exact embedding sets
//! (vertex *and* edge bindings).

use mnemonic::core::api::{
    EdgeMatcher, FnEdgeMatcher, LabelEdgeMatcher, MatchSemantics, MatcherContext, UpdateMode,
};
use mnemonic::core::embedding::{CollectingSink, CompleteEmbedding};
use mnemonic::core::engine::{EngineConfig, Mnemonic};
use mnemonic::core::session::MnemonicSession;
use mnemonic::core::variants::{Isomorphism, TemporalIsomorphism};
use mnemonic::core::MnemonicError;
use mnemonic::graph::edge::Edge;
use mnemonic::query::patterns;
use mnemonic::query::query_graph::QueryGraph;
use mnemonic::stream::event::StreamEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One standing query: its pattern plus fresh matcher/semantics trait
/// objects (boxed trait objects cannot be cloned, so the fixture hands out
/// factories).
struct QuerySpec {
    name: &'static str,
    query: QueryGraph,
    matcher: fn() -> Box<dyn EdgeMatcher>,
    semantics: fn() -> Box<dyn MatchSemantics>,
}

fn protocol_zero_matcher() -> Box<dyn EdgeMatcher> {
    // The "democratised" custom edgeMatcher of the programmable_variants
    // example: only protocol-0 flow events may participate.
    Box::new(FnEdgeMatcher(|_ctx: &MatcherContext<'_>, _q, e: &Edge| {
        e.label.0 == 0
    }))
}

fn three_queries() -> Vec<QuerySpec> {
    vec![
        QuerySpec {
            name: "triangle",
            query: patterns::triangle(),
            matcher: || Box::new(LabelEdgeMatcher),
            semantics: || Box::new(Isomorphism),
        },
        QuerySpec {
            name: "path3",
            query: patterns::path(3),
            matcher: || Box::new(LabelEdgeMatcher),
            semantics: || Box::new(Isomorphism),
        },
        QuerySpec {
            name: "temporal-protocol0",
            query: patterns::temporal_path(3),
            matcher: protocol_zero_matcher,
            semantics: || Box::new(TemporalIsomorphism),
        },
    ]
}

/// A deterministic mixed insert/delete stream with several edge labels and
/// strictly increasing timestamps (so the temporal variant has real ordering
/// constraints to enforce).
fn mixed_stream(seed: u64, vertices: u32, labels: u16, events: usize) -> Vec<StreamEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<(u32, u32, u16)> = Vec::new();
    let mut out = Vec::with_capacity(events);
    for ts in 0..events as u64 {
        if !live.is_empty() && rng.gen_bool(0.25) {
            let idx = rng.gen_range(0..live.len());
            let (s, d, l) = live.swap_remove(idx);
            out.push(StreamEvent::delete(s, d, l).at(ts));
        } else {
            let src = rng.gen_range(0..vertices);
            let mut dst = rng.gen_range(0..vertices);
            if dst == src {
                dst = (dst + 1) % vertices;
            }
            let label = rng.gen_range(0..labels);
            live.push((src, dst, label));
            out.push(StreamEvent::insert(src, dst, label).at(ts));
        }
    }
    out
}

fn sorted(mut embeddings: Vec<CompleteEmbedding>) -> Vec<CompleteEmbedding> {
    embeddings.sort();
    embeddings
}

fn config_with(mode: UpdateMode) -> EngineConfig {
    EngineConfig {
        update_mode: mode,
        ..EngineConfig::sequential()
    }
}

/// Replay `events` through a session holding all three queries and through
/// three independent engines, and require identical per-query embedding
/// sets (positive and negative, including edge bindings).
fn check_session_matches_independent_engines(mode: UpdateMode) {
    let events = mixed_stream(23, 12, 2, 140);
    let specs = three_queries();

    // One session, three standing queries, the stream ingested once.
    let mut session = MnemonicSession::builder()
        .config(config_with(mode))
        .build()
        .expect("valid session config");
    let handles: Vec<_> = specs
        .iter()
        .map(|spec| {
            session
                .register_query(spec.query.clone(), (spec.matcher)(), (spec.semantics)())
                .expect("connected query")
        })
        .collect();
    session
        .run_events(events.iter().copied())
        .expect("session replay succeeds");

    // Three independent engines, each ingesting the stream on its own.
    for (spec, handle) in specs.iter().zip(&handles) {
        let mut engine = Mnemonic::new(
            spec.query.clone(),
            (spec.matcher)(),
            (spec.semantics)(),
            config_with(mode),
        );
        let sink = CollectingSink::new();
        engine.run_events(events.iter().copied(), &sink);

        let session_results = handle.drain();
        assert_eq!(
            sorted(session_results.positive),
            sorted(sink.take_positive()),
            "query `{}`: positive embeddings diverged (mode {mode:?})",
            spec.name,
        );
        assert_eq!(
            sorted(session_results.negative),
            sorted(sink.take_negative()),
            "query `{}`: negative embeddings diverged (mode {mode:?})",
            spec.name,
        );
    }
}

#[test]
fn three_query_session_matches_independent_engines_per_edge() {
    check_session_matches_independent_engines(UpdateMode::PerEdge);
}

#[test]
fn three_query_session_matches_independent_engines_batched() {
    check_session_matches_independent_engines(UpdateMode::Batched(7));
}

#[test]
fn no_events_are_lost_across_run_events_then_finish() {
    let events = mixed_stream(31, 10, 1, 90);
    let (first, second) = events.split_at(50);

    // Reference: one engine that sees both halves through run_events (which
    // always flushes its tail, so its batch boundaries match the session
    // replay below exactly: one flush per half).
    let mut reference = Mnemonic::new(
        patterns::triangle(),
        Box::new(LabelEdgeMatcher),
        Box::new(Isomorphism),
        config_with(UpdateMode::Batched(64)),
    );
    let reference_sink = CollectingSink::new();
    reference.run_events(first.iter().copied(), &reference_sink);
    reference.run_events(second.iter().copied(), &reference_sink);

    // Session: run_events over the first half, then raw pushes that leave a
    // partial batch pending, then finish() — the lossless shutdown.
    let mut session = MnemonicSession::builder()
        .config(config_with(UpdateMode::Batched(64)))
        .build()
        .unwrap();
    let handle = session
        .register_query(
            patterns::triangle(),
            Box::new(LabelEdgeMatcher),
            Box::new(Isomorphism),
        )
        .unwrap();
    session.run_events(first.iter().copied()).unwrap();
    for e in second {
        session.push_event(*e).unwrap();
    }
    assert!(
        session.pending_events() > 0,
        "the tail pushes must leave a partial batch pending for the test to be meaningful"
    );
    let last = session.finish().unwrap();
    assert!(last.is_some(), "finish flushed the pending batch");

    let got = handle.drain();
    assert_eq!(
        sorted(got.positive),
        sorted(reference_sink.take_positive()),
        "positive embeddings lost or duplicated across run_events → finish"
    );
    assert_eq!(
        sorted(got.negative),
        sorted(reference_sink.take_negative()),
        "negative embeddings lost or duplicated across run_events → finish"
    );
}

#[test]
fn deregistration_mid_stream_leaves_other_queries_exact() {
    let events = mixed_stream(47, 10, 2, 120);
    let (first, second) = events.split_at(60);

    let mut session = MnemonicSession::builder()
        .config(config_with(UpdateMode::Batched(16)))
        .build()
        .unwrap();
    let triangles = session
        .register_query(
            patterns::triangle(),
            Box::new(LabelEdgeMatcher),
            Box::new(Isomorphism),
        )
        .unwrap();
    let paths = session
        .register_query(
            patterns::path(3),
            Box::new(LabelEdgeMatcher),
            Box::new(Isomorphism),
        )
        .unwrap();

    session.run_events(first.iter().copied()).unwrap();
    let paths_before = paths.accepted();
    session.deregister(&paths).unwrap();
    session.run_events(second.iter().copied()).unwrap();
    assert_eq!(
        paths.accepted(),
        paths_before,
        "a deregistered query must stop receiving embeddings"
    );
    assert!(matches!(
        session.deregister(&paths),
        Err(MnemonicError::UnknownQuery(_))
    ));

    // The surviving query is still exact vs an independent engine replayed
    // with the same flush boundaries (run_events drains its tail, so the
    // reference must also split the stream at the deregistration point).
    let mut engine = Mnemonic::new(
        patterns::triangle(),
        Box::new(LabelEdgeMatcher),
        Box::new(Isomorphism),
        config_with(UpdateMode::Batched(16)),
    );
    let sink = CollectingSink::new();
    engine.run_events(first.iter().copied(), &sink);
    engine.run_events(second.iter().copied(), &sink);
    let got = triangles.drain();
    assert_eq!(sorted(got.positive), sorted(sink.take_positive()));
    assert_eq!(sorted(got.negative), sorted(sink.take_negative()));
}

#[test]
fn session_shares_one_graph_across_queries() {
    let events = mixed_stream(59, 8, 2, 60);
    let mut session = MnemonicSession::builder()
        .config(config_with(UpdateMode::Batched(8)))
        .build()
        .unwrap();
    for spec in three_queries() {
        session
            .register_query(spec.query, (spec.matcher)(), (spec.semantics)())
            .unwrap();
    }
    let results = session.run_events(events.iter().copied()).unwrap();

    // Graph-level work happened once per batch regardless of query count:
    // the per-query BatchResults of one batch agree on the shared deltas.
    let mut total_insertions = 0usize;
    for r in &results {
        assert_eq!(r.per_query.len(), 3);
        for (_, q) in &r.per_query {
            assert_eq!(q.insertions, r.insertions);
            assert_eq!(q.deletions, r.deletions);
        }
        total_insertions += r.insertions;
    }
    let live_inserts = events.iter().filter(|e| e.is_insert()).count();
    assert_eq!(total_insertions, live_inserts);
    let deletes = events.iter().filter(|e| e.is_delete()).count();
    assert_eq!(
        session.graph().live_edge_count(),
        live_inserts - deletes,
        "every delete in the fixture targets a live edge"
    );
}
