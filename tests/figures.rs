//! Figures regression harness: runs the `figures` evaluation pipelines
//! in-process on the micro workload scale and validates the CSV outputs —
//! schema, row counts and sanity invariants (non-negative latencies,
//! monotone cumulative counters). This is the tier-1 safety net under every
//! future perf rewrite of the hot paths the figures measure.

use mnemonic_bench::figures::{compare_summaries, read_csv, read_summary, Figures};
use mnemonic_bench::workloads::WorkloadScale;
use std::path::{Path, PathBuf};

/// A scratch output directory, removed when dropped.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("mnemonic-figures-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch results dir");
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn parse_f64(field: &str, context: &str) -> f64 {
    field
        .parse::<f64>()
        .unwrap_or_else(|_| panic!("{context}: field '{field}' is not a number"))
}

/// Validate a CSV against its expected header; every data field after the
/// first (label) column must parse as a non-negative finite number.
fn check_numeric_csv(path: &Path, expected_header: &str, min_rows: usize) -> Vec<Vec<String>> {
    let (header, rows) = read_csv(path).expect("csv must parse");
    assert_eq!(
        header,
        expected_header,
        "{}: schema drifted",
        path.display()
    );
    assert!(
        rows.len() >= min_rows,
        "{}: expected at least {min_rows} data rows, got {}",
        path.display(),
        rows.len()
    );
    for (i, row) in rows.iter().enumerate() {
        for field in &row[1..] {
            let v = parse_f64(field, &format!("{} row {i}", path.display()));
            assert!(
                v.is_finite() && v >= 0.0,
                "{} row {i}: negative or non-finite value {v}",
                path.display()
            );
        }
    }
    rows
}

#[test]
fn table2_reports_all_fixed_queries_with_sane_latencies() {
    let scratch = ScratchDir::new("table2");
    let figures = Figures::new(WorkloadScale::micro(), &scratch.0);
    assert!(figures.run("table2"));
    let rows = check_numeric_csv(
        &figures.csv_path("table2_fixed_queries.csv"),
        "query,bigjoin_s,turboflux_s,mnemonic_s",
        5,
    );
    let names: Vec<&str> = rows.iter().map(|r| r[0].as_str()).collect();
    for expected in [
        "triangle",
        "4-clique",
        "5-clique",
        "rectangle",
        "dual-triangle",
    ] {
        assert!(names.contains(&expected), "missing row for {expected}");
    }
    // All three engines really ran: a pipeline that silently did no work
    // reports exact zeros across the board.
    assert!(
        rows.iter()
            .any(|r| parse_f64(&r[3], "mnemonic_s") > 0.0 || parse_f64(&r[2], "turboflux_s") > 0.0),
        "all latencies are zero — the experiment did not run"
    );
}

#[test]
fn fig8_traversals_per_update_cover_the_query_classes() {
    let scratch = ScratchDir::new("fig8");
    let figures = Figures::new(WorkloadScale::micro(), &scratch.0);
    assert!(figures.run("fig8"));
    let rows = check_numeric_csv(
        &figures.csv_path("fig8_traversals_per_update.csv"),
        "query_class,batch_1,batch_16,batch_16k",
        4,
    );
    // Batching's raison d'être (Figure 8): across the workload, the shared
    // frontier must not traverse *more* per update at batch 16K than at
    // batch 1 in aggregate.
    let sum = |col: usize| -> f64 { rows.iter().map(|r| parse_f64(&r[col], "fig8")).sum::<f64>() };
    assert!(
        sum(3) <= sum(1),
        "batched traversals per update exceed per-edge traversals"
    );
}

#[test]
fn fig12_and_fig13_scalability_report_positive_speedups() {
    let scratch = ScratchDir::new("scalability");
    let figures = Figures::new(WorkloadScale::micro(), &scratch.0);
    assert!(figures.run("fig12"));
    assert!(figures.run("fig13"));

    let (header, rows) =
        read_csv(&figures.csv_path("fig12_batch_scalability.csv")).expect("fig12 csv");
    assert!(header.starts_with("query_class,batch_32,batch_64"));
    assert!(!rows.is_empty(), "no query class produced fig12 rows");
    for row in &rows {
        for field in &row[1..] {
            assert!(parse_f64(field, "fig12 speedup") > 0.0);
        }
    }

    let (header, rows) =
        read_csv(&figures.csv_path("fig13_thread_scalability.csv")).expect("fig13 csv");
    assert!(header.starts_with("query_class,threads_1"));
    assert!(!rows.is_empty(), "no query class produced fig13 rows");
    for row in &rows {
        for field in &row[1..] {
            assert!(parse_f64(field, "fig13 speedup") > 0.0);
        }
    }
}

#[test]
fn summary_counters_match_the_checked_in_micro_baseline() {
    let scratch = ScratchDir::new("summary");
    let figures = Figures::new(WorkloadScale::micro(), &scratch.0);
    let current = read_summary(&figures.write_summary()).expect("fresh summary parses");
    let baseline_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("results/summary_baseline_micro.json");
    let baseline = read_summary(&baseline_path).expect("checked-in baseline parses");
    // Every counter is a deterministic count at fixed scale + seed, so the
    // tolerance is nominally zero; the epsilon only absorbs float printing.
    let violations = compare_summaries(&current, &baseline, 1e-9);
    assert!(
        violations.is_empty(),
        "headline counters drifted from results/summary_baseline_micro.json:\n  {}\n\
         If the change is intended, regenerate the baseline:\n  \
         cargo run --release -p mnemonic-bench --bin figures -- summary --scale micro\n  \
         cp results/summary.json results/summary_baseline_micro.json",
        violations.join("\n  ")
    );
}

#[test]
fn fig17_placeholder_counters_are_monotone_and_reclaiming_dominates() {
    let scratch = ScratchDir::new("fig17");
    let figures = Figures::new(WorkloadScale::micro(), &scratch.0);
    assert!(figures.run("fig17"));
    let rows = check_numeric_csv(
        &figures.csv_path("fig17_memory_reclaiming.csv"),
        "mode,snapshot,placeholders,live_edges",
        2,
    );
    let series = |mode: &str| -> Vec<(u64, u64, u64)> {
        rows.iter()
            .filter(|r| r[0] == mode)
            .map(|r| {
                (
                    r[1].parse().unwrap(),
                    r[2].parse().unwrap(),
                    r[3].parse().unwrap(),
                )
            })
            .collect()
    };
    for mode in ["reclaiming", "no_reclaiming"] {
        let samples = series(mode);
        assert!(!samples.is_empty(), "mode {mode} produced no samples");
        // Snapshot ids strictly increase and the placeholder pool is a
        // cumulative counter: slots are never deallocated, only reused.
        for pair in samples.windows(2) {
            assert!(pair[1].0 > pair[0].0, "{mode}: snapshot ids not increasing");
            assert!(
                pair[1].1 >= pair[0].1,
                "{mode}: placeholder counter shrank from {} to {}",
                pair[0].1,
                pair[1].1
            );
        }
        // Placeholders always cover the live edges.
        for (snap, placeholders, live) in &samples {
            assert!(
                placeholders >= live,
                "{mode} snapshot {snap}: {placeholders} placeholders < {live} live edges"
            );
        }
    }
    // Reclaiming must never need more slots than the non-reclaiming run.
    let last = |mode: &str| series(mode).last().map(|&(_, p, _)| p).unwrap();
    assert!(
        last("reclaiming") <= last("no_reclaiming"),
        "edge-slot reclaiming increased the placeholder count"
    );
}
