//! Fault tolerance, end to end.
//!
//! 1. Crash recovery is differential: for any corruption point in the paged
//!    spill log, `recover()` yields an *exact prefix* of what was written —
//!    embedding-identical to a clean replay of the surviving records,
//!    deletions included — and every lost byte shows up in the
//!    [`RecoveryReport`]; nothing disappears silently.
//! 2. Checkpoint restarts: a recovered manager re-primes from the sidecar,
//!    keeps appending, checkpoints again, and survives a second crash.
//! 3. Graceful shard degradation: a lane panicking mid-batch under a
//!    `DegradePolicy` no longer fails the serve run — the shard is
//!    quarantined, its queries migrate, and the post-recovery results are
//!    embedding-exact against an unfaulted oracle.
//! 4. The shed tier and disconnect accounting of the admission queue.

use mnemonic::core::api::{FnEdgeMatcher, LabelEdgeMatcher, MatcherContext, UpdateMode};
use mnemonic::core::embedding::CompleteEmbedding;
use mnemonic::core::engine::EngineConfig;
use mnemonic::core::ingest::{BackpressurePolicy, IngestQueue, PushError};
use mnemonic::core::rebalance::DegradePolicy;
use mnemonic::core::session::QueryHandle;
use mnemonic::core::shard::ShardedSession;
use mnemonic::core::variants::Isomorphism;
use mnemonic::graph::edge::Edge;
use mnemonic::graph::edge_log::LogRecord;
use mnemonic::graph::ids::{EdgeId, EdgeLabel, QueryEdgeId, Timestamp, VertexId};
use mnemonic::graph::spill::{SpillConfig, SpillManager};
use mnemonic::graph::storage::{FaultPlan, PagedEdgeLog, StorageConfig, MIN_PAGE_SIZE};
use mnemonic::query::patterns;
use mnemonic::stream::event::StreamEvent;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

// ---- crash-recovery differential -------------------------------------------

/// Deterministic record stream: small vertex ids so replays form plenty of
/// embeddings, strictly increasing edge ids and timestamps as the spill
/// path produces them.
fn records(n: usize) -> Vec<LogRecord> {
    (0..n as u32)
        .map(|i| LogRecord {
            edge: Edge {
                id: EdgeId(i),
                src: VertexId(i % 23),
                dst: VertexId((i + 1 + i % 7) % 23),
                label: EdgeLabel((i % 2) as u16),
                timestamp: Timestamp(u64::from(i)),
            },
            debi_row: u64::from(i % 16),
        })
        .collect()
}

/// Replay a record prefix into a fresh session as an insert/delete stream
/// (every 7th record deletes the edge three before it) and drain the
/// triangle + path embeddings. The stream depends only on the records, so
/// two equal prefixes must produce byte-equal embeddings. Capped to the
/// first 300 records: the full recovered prefix is compared record-for-
/// record separately; the replay checks the *session-level* consequence
/// without enumerating millions of path embeddings in a debug build.
fn replay_embeddings(
    prefix: &[LogRecord],
) -> Vec<(Vec<CompleteEmbedding>, Vec<CompleteEmbedding>)> {
    let prefix = &prefix[..prefix.len().min(300)];
    let mut session = ShardedSession::builder()
        .shards(2)
        .sequential()
        .batch_size(4)
        .build()
        .expect("valid config");
    let handles: Vec<QueryHandle> = [patterns::triangle(), patterns::path(3)]
        .into_iter()
        .map(|q| {
            session
                .register_query(q, Box::new(LabelEdgeMatcher), Box::new(Isomorphism))
                .expect("connected query")
        })
        .collect();
    let mut events = Vec::new();
    for (i, r) in prefix.iter().enumerate() {
        events.push(
            StreamEvent::insert(r.edge.src.0, r.edge.dst.0, r.edge.label.0).at(r.edge.timestamp.0),
        );
        if i % 7 == 6 {
            let d = &prefix[i - 3].edge;
            events.push(StreamEvent::delete(d.src.0, d.dst.0, d.label.0).at(r.edge.timestamp.0));
        }
    }
    session.run_events(events).expect("clean replay succeeds");
    handles
        .iter()
        .map(|h| {
            let batch = h.drain();
            let (mut pos, mut neg) = (batch.positive, batch.negative);
            pos.sort();
            neg.sort();
            (pos, neg)
        })
        .collect()
}

/// Corrupt one byte, recover, and check the differential: the recovered log
/// is an exact prefix of the written records, the report accounts any loss,
/// and replaying the recovered records (deletions included) lands on
/// exactly the embeddings of a clean replay of that same prefix.
#[test]
fn recovered_prefix_is_embedding_identical_to_clean_replay() {
    let all = records(6_000);
    // A spread of corruption offsets: early, page-interior, late. Each case
    // writes its own log so the corruption sites are independent.
    for (case, frac) in [(0usize, 0.02f64), (1, 0.37), (2, 0.71), (3, 0.96)] {
        let mut log = PagedEdgeLog::create_temp(MIN_PAGE_SIZE, 2, &format!("diff-{case}")).unwrap();
        log.append_batch(&all).unwrap();
        log.flush().unwrap();
        let path = log.path().to_path_buf();
        drop(log); // crash: no destroy, no clean shutdown bookkeeping

        let len = std::fs::metadata(&path).unwrap().len();
        let offset = ((len as f64 * frac) as u64).min(len - 1);
        {
            use std::io::{Read, Seek, SeekFrom, Write};
            let mut f = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .unwrap();
            let mut byte = [0u8; 1];
            f.seek(SeekFrom::Start(offset)).unwrap();
            f.read_exact(&mut byte).unwrap();
            f.seek(SeekFrom::Start(offset)).unwrap();
            f.write_all(&[byte[0] ^ 0x5A]).unwrap();
        }

        let (mut recovered, report) = PagedEdgeLog::recover(&path, MIN_PAGE_SIZE, 2).unwrap();
        let survivors = recovered.scan_all().unwrap();
        assert_eq!(survivors.len() as u64, report.records_recovered);
        assert_eq!(
            survivors.as_slice(),
            &all[..survivors.len()],
            "recovery yields an exact prefix (case {case})"
        );
        if survivors.len() < all.len() {
            // Loss is never silent: the report names the torn page and the
            // truncated bytes.
            let torn = report.first_torn_page.expect("loss must be reported");
            assert_eq!(
                u64::from(torn),
                offset / MIN_PAGE_SIZE as u64,
                "the scan stops exactly at the corrupted page (case {case})"
            );
            assert!(report.bytes_truncated > 0, "truncation accounted");
        } else {
            // The flipped byte landed in checksum-invisible padding; full
            // recovery with nothing truncated is the correct outcome.
            assert_eq!(report.bytes_truncated, 0);
            assert_eq!(report.first_torn_page, None);
        }
        assert_eq!(
            replay_embeddings(&survivors),
            replay_embeddings(&all[..survivors.len()]),
            "recovered records replay to identical embeddings (case {case})"
        );
        recovered.destroy().unwrap();
    }
}

/// Deterministic fault injection, end to end: a seeded torn write planted
/// through [`FaultPlan`] produces exactly the crash the recovery scan is
/// built for, and a `transient_every` plan exercises the bounded-retry path
/// with zero data loss while `io_retries` counts each retried attempt.
#[test]
fn fault_plans_are_deterministic_and_retries_are_counted() {
    let all = records(2_000);

    // Torn write at a seeded ordinal: the write reports success, so the
    // crash is only discovered by recovery — which truncates at exactly the
    // torn page and keeps the full prefix before it.
    let plan = FaultPlan {
        seed: 7,
        torn_write: 3,
        ..FaultPlan::default()
    };
    let torn_replays: Vec<Vec<LogRecord>> = (0..2)
        .map(|run| {
            let mut log =
                PagedEdgeLog::create_temp_with(MIN_PAGE_SIZE, 2, &format!("torn-{run}"), plan)
                    .unwrap();
            log.append_batch(&all).unwrap();
            log.flush().unwrap();
            let path = log.path().to_path_buf();
            drop(log);
            let (mut recovered, report) = PagedEdgeLog::recover(&path, MIN_PAGE_SIZE, 2).unwrap();
            assert_eq!(report.first_torn_page, Some(2), "3rd write = page slot 2");
            assert!(report.bytes_truncated > 0, "torn tail is accounted");
            let survivors = recovered.scan_all().unwrap();
            assert_eq!(survivors.as_slice(), &all[..survivors.len()]);
            recovered.destroy().unwrap();
            survivors
        })
        .collect();
    assert_eq!(
        torn_replays[0], torn_replays[1],
        "equal seeds tear identically — the fault schedule is deterministic"
    );

    // Transient faults: every 5th I/O op fails once with Interrupted; the
    // bounded retry succeeds, so nothing is lost and nothing is an error.
    let plan = FaultPlan {
        seed: 7,
        transient_every: 5,
        ..FaultPlan::default()
    };
    let mut log = PagedEdgeLog::create_temp_with(MIN_PAGE_SIZE, 2, "transient", plan).unwrap();
    log.append_batch(&all).unwrap();
    log.flush().unwrap();
    assert_eq!(
        log.scan_all().unwrap(),
        all,
        "retried transients lose nothing"
    );
    let stats = log.stats();
    assert!(stats.io_retries > 0, "each retried attempt is counted");
    assert_eq!(stats.io_errors, 0, "a retried transient is not an error");
    log.destroy().unwrap();
}

/// Checkpoint restarts across *two* crashes: recovery re-primes from the
/// sidecar, the recovered manager keeps appending and checkpointing, and a
/// second recovery still scans back every record in order.
#[test]
fn checkpoint_restart_survives_repeated_crashes() {
    let storage = StorageConfig::paged()
        .page_size(MIN_PAGE_SIZE)
        .cache_pages(4)
        .checkpoint_every(2);
    let spill = SpillConfig {
        in_memory_window: 0,
        buffer_capacity: 64,
    };
    let dir = std::env::temp_dir().join(format!("mnemonic-ckpt-restart-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("spill.pages");

    let all = records(5_000);
    let mut mgr = SpillManager::with_storage(spill, storage, &path).unwrap();
    for r in &all[..3_000] {
        mgr.spill_record(*r).unwrap();
    }
    let watermark = mgr.checkpoint().unwrap().expect("paged backend");
    assert_eq!(watermark, 3_000);
    drop(mgr); // first crash

    let (mut mgr, report) = SpillManager::recover(spill, storage, &path).unwrap();
    assert_eq!(report.records_recovered, 3_000);
    assert!(
        report.records_from_checkpoint > 0,
        "recovery re-primes from the sidecar, not a full rescan"
    );
    assert_eq!(report.bytes_truncated, 0, "clean shutdown loses nothing");
    for r in &all[3_000..] {
        mgr.spill_record(*r).unwrap();
    }
    mgr.checkpoint().unwrap();
    drop(mgr); // second crash

    let (mut mgr, report) = SpillManager::recover(spill, storage, &path).unwrap();
    assert_eq!(report.records_recovered, 5_000);
    assert_eq!(mgr.scan_records().unwrap(), all, "append order intact");
    mgr.destroy().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- graceful shard degradation ---------------------------------------------

/// Trips exactly once, process-wide, on the first edge with `src == 3`:
/// models a shard that crashes once and whose work is then replayed on a
/// healthy host without re-tripping.
static TRIPPED: AtomicBool = AtomicBool::new(false);

fn panic_once_matcher(_ctx: &MatcherContext<'_>, _q: QueryEdgeId, e: &Edge) -> bool {
    if e.src.0 == 3 && !TRIPPED.swap(true, Ordering::SeqCst) {
        panic!("injected shard fault");
    }
    true
}

/// A forced mid-batch lane panic under a `DegradePolicy` must not fail the
/// run: the poisoned shard is quarantined, its query migrates, and the
/// final embeddings are exact against an unfaulted oracle.
#[test]
fn degraded_serve_absorbs_a_lane_panic_and_stays_embedding_exact() {
    let events: Vec<StreamEvent> = (0..60u32)
        .map(|i| {
            let s = i % 11;
            StreamEvent::insert(s, (s + 1 + i % 4) % 11, 0).at(u64::from(i))
        })
        .collect();
    // One event trips the poisoned matcher (vertex 3 shows up as a source
    // several times; only the first sighting panics).
    assert!(events.iter().any(|e| e.src.0 == 3));

    let build = |poisoned: bool| {
        let mut session = ShardedSession::builder()
            .shards(3)
            .config(EngineConfig {
                update_mode: UpdateMode::from_batch_size(4),
                ..EngineConfig::sequential()
            })
            .degrade_policy(DegradePolicy {
                max_restarts: 2,
                backoff: Duration::from_millis(1),
            })
            .build()
            .expect("valid config");
        // Shard 0 hosts the query that will fault; shards 1 and 2 hold
        // healthy queries, so surviving lanes exist to adopt the orphans.
        let matcher: Box<dyn mnemonic::core::api::EdgeMatcher> = if poisoned {
            Box::new(FnEdgeMatcher(panic_once_matcher))
        } else {
            Box::new(FnEdgeMatcher(
                |_ctx: &MatcherContext<'_>, _q: QueryEdgeId, _e: &Edge| true,
            ))
        };
        let h0 = session
            .register_query_on_shard(patterns::triangle(), 0, matcher, Box::new(Isomorphism))
            .expect("connected query");
        let h1 = session
            .register_query_on_shard(
                patterns::path(3),
                1,
                Box::new(LabelEdgeMatcher),
                Box::new(Isomorphism),
            )
            .expect("connected query");
        let h2 = session
            .register_query_on_shard(
                patterns::rectangle(),
                2,
                Box::new(LabelEdgeMatcher),
                Box::new(Isomorphism),
            )
            .expect("connected query");
        (session, [h0, h1, h2])
    };

    let drained = |handles: &[QueryHandle; 3]| -> Vec<Vec<CompleteEmbedding>> {
        handles
            .iter()
            .map(|h| {
                let mut pos = h.drain().positive;
                pos.sort();
                pos
            })
            .collect()
    };

    let (mut oracle, oracle_handles) = build(false);
    oracle
        .run_pipelined(events.iter().copied())
        .expect("unfaulted run succeeds");
    let want = drained(&oracle_handles);

    TRIPPED.store(false, Ordering::SeqCst);
    let (mut faulted, handles) = build(true);
    let run = faulted
        .run_pipelined(events.iter().copied())
        .expect("the lane panic is absorbed, not surfaced");
    assert!(TRIPPED.load(Ordering::SeqCst), "the fault actually fired");

    let report = *run.degrade().expect("degradation engaged");
    assert_eq!(report.restarts, 1, "one absorbed failure");
    assert_eq!(report.quarantined_shards, 1);
    assert_eq!(
        report.queries_migrated, 1,
        "the poisoned shard's query moved"
    );
    assert!(report.batches_replayed > 0, "the gap was replayed");
    assert_eq!(
        run.batch_count(),
        events.len().div_ceil(4),
        "every batch accounted despite the fault"
    );
    assert_eq!(drained(&handles), want, "post-recovery results are exact");

    // The same fault without a policy still surfaces as the typed error.
    TRIPPED.store(false, Ordering::SeqCst);
    let mut bare = ShardedSession::builder()
        .shards(3)
        .config(EngineConfig {
            update_mode: UpdateMode::from_batch_size(4),
            ..EngineConfig::sequential()
        })
        .build()
        .unwrap();
    bare.register_query_on_shard(
        patterns::triangle(),
        0,
        Box::new(FnEdgeMatcher(panic_once_matcher)),
        Box::new(Isomorphism),
    )
    .unwrap();
    let err = bare.run_pipelined(events.iter().copied()).unwrap_err();
    assert!(matches!(
        err,
        mnemonic::core::MnemonicError::ShardPanicked(0)
    ));
}

/// The degrade budget is a hard cap: more lane failures than
/// `max_restarts` surfaces the typed error instead of looping forever.
#[test]
fn degrade_policy_validates_and_caps_restarts() {
    let err = ShardedSession::builder()
        .shards(2)
        .degrade_policy(DegradePolicy {
            max_restarts: 0,
            backoff: Duration::ZERO,
        })
        .build()
        .unwrap_err();
    assert!(matches!(
        err,
        mnemonic::core::MnemonicError::InvalidConfig(_)
    ));
}

// ---- shed tier and disconnect accounting ------------------------------------

/// `BlockTimeout` overflow is *shed*, counted separately from `Reject`'s
/// fail-fast count, and reaches the serve report; the lossless `Block`
/// policy never sheds.
#[test]
fn shed_tier_counts_blocktimeout_overflow_in_the_serve_report() {
    // Fill a tiny ring with no consumer draining: the pushes past capacity
    // must time out and count as shed.
    let (tx, rx) = IngestQueue::bounded(
        2,
        BackpressurePolicy::BlockTimeout(Duration::from_millis(2)),
    );
    tx.push(StreamEvent::insert(0, 1, 0)).unwrap();
    tx.push(StreamEvent::insert(1, 2, 0)).unwrap();
    for i in 0..3u32 {
        let err = tx.push(StreamEvent::insert(2 + i, 3 + i, 0)).unwrap_err();
        assert!(matches!(err, PushError::Timeout(_)));
    }
    assert_eq!(tx.stats().shed, 3);
    assert_eq!(tx.stats().rejected, 0, "shed is its own tier");
    drop(tx);

    let mut session = ShardedSession::builder()
        .shards(2)
        .sequential()
        .batch_size(2)
        .build()
        .unwrap();
    session
        .register_query(
            patterns::path(2),
            Box::new(LabelEdgeMatcher),
            Box::new(Isomorphism),
        )
        .unwrap();
    let run = session.serve(rx).unwrap();
    let queue = run.queue_stats().expect("serve reports queue stats");
    assert_eq!(queue.shed, 3, "shed counters join the serve report");
    assert_eq!(queue.pushed, 2, "admitted events were served");
    assert_eq!(queue.queued_at_disconnect, 0, "clean drain strands nothing");

    // The lossless policy never sheds.
    let (tx, rx) = IngestQueue::bounded(8, BackpressurePolicy::Block);
    for i in 0..5u32 {
        tx.push(StreamEvent::insert(i, i + 1, 0)).unwrap();
    }
    drop(tx);
    let mut session = ShardedSession::builder()
        .shards(2)
        .sequential()
        .batch_size(2)
        .build()
        .unwrap();
    let run = session.serve(rx).unwrap();
    assert_eq!(run.queue_stats().unwrap().shed, 0);
}

/// Dropping the consumer mid-stream strands the queued events: producers
/// fail fast with `Disconnected` and the stranded count is visible in
/// `QueueStats`, so a dying server can never lose events silently.
#[test]
fn consumer_drop_mid_stream_reports_stranded_events() {
    let (tx, rx) = IngestQueue::bounded(8, BackpressurePolicy::Block);
    for i in 0..3u32 {
        tx.push(StreamEvent::insert(i, i + 1, 0)).unwrap();
    }
    drop(rx); // the server dies with three events still queued
    let err = tx.push(StreamEvent::insert(9, 10, 0)).unwrap_err();
    assert!(matches!(err, PushError::Disconnected(_)));
    let stats = tx.stats();
    assert_eq!(
        stats.queued_at_disconnect, 3,
        "events stranded at disconnect are accounted"
    );
    assert_eq!(stats.pushed, 3);
}
