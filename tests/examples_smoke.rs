//! Smoke test: every shipped example builds and runs to completion.
//!
//! `cargo test` already compiles the examples; these tests additionally
//! *execute* each binary via the same `cargo` that is running the test
//! suite, so a panic, a non-zero exit or an API drift inside an example
//! fails tier-1 instead of rotting silently. The dev-profile example
//! binaries are already built by the enclosing `cargo test` invocation, so
//! each case is a cache hit plus the example's own (seconds-long) runtime.

use std::path::Path;
use std::process::Command;

fn run_example(name: &str) {
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(cargo)
        .args(["run", "-q", "--example", name])
        .current_dir(Path::new(manifest_dir))
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example `{name}`: {e}"));
    assert!(
        output.status.success(),
        "example `{name}` exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(
        !output.stdout.is_empty(),
        "example `{name}` printed nothing; expected a summary on stdout"
    );
}

#[test]
fn quickstart_runs() {
    run_example("quickstart");
}

#[test]
fn social_stream_runs() {
    run_example("social_stream");
}

#[test]
fn sliding_window_lanl_runs() {
    run_example("sliding_window_lanl");
}

#[test]
fn cyber_forensics_runs() {
    run_example("cyber_forensics");
}

#[test]
fn programmable_variants_runs() {
    run_example("programmable_variants");
}

#[test]
fn multi_query_session_runs() {
    run_example("multi_query_session");
}

#[test]
fn sharded_session_runs() {
    run_example("sharded_session");
}

#[test]
fn mnemonic_serve_runs() {
    run_example("mnemonic_serve");
}
