//! Thread- and batching-determinism: the set of reported embeddings must not
//! depend on how many workers enumerate a batch (widths 1 / 2 / 8) or on
//! whether events arrive through the snapshot path, the engine's batched
//! update path, or the per-edge update path.

use mnemonic::core::api::{LabelEdgeMatcher, UpdateMode};
use mnemonic::core::embedding::{CollectingSink, CompleteEmbedding};
use mnemonic::core::engine::{EngineConfig, Mnemonic};
use mnemonic::core::variants::Isomorphism;
use mnemonic::datagen::{netflow_like, NetflowConfig};
use mnemonic::query::patterns;
use mnemonic::query::query_graph::QueryGraph;
use mnemonic::stream::config::StreamConfig;
use mnemonic::stream::event::StreamEvent;
use mnemonic::stream::generator::SnapshotGenerator;
use mnemonic::stream::source::VecSource;

fn small_stream(events: usize, seed: u64) -> Vec<StreamEvent> {
    netflow_like(NetflowConfig {
        vertices: 40,
        events,
        edge_labels: 2,
        seed,
    })
}

fn engine_with(query: &QueryGraph, config: EngineConfig) -> Mnemonic {
    Mnemonic::new(
        query.clone(),
        Box::new(LabelEdgeMatcher),
        Box::new(Isomorphism),
        config,
    )
}

/// Sorted (positive, negative) embedding lists after replaying `events`
/// through the snapshot path with the given thread count.
fn snapshot_run(
    query: &QueryGraph,
    events: &[StreamEvent],
    batch: usize,
    threads: usize,
) -> (Vec<CompleteEmbedding>, Vec<CompleteEmbedding>) {
    let config = if threads <= 1 {
        EngineConfig::sequential()
    } else {
        EngineConfig::with_threads(threads)
    };
    let mut engine = engine_with(query, config);
    let sink = CollectingSink::new();
    engine.run_stream(
        SnapshotGenerator::new(
            VecSource::new(events.to_vec()),
            StreamConfig::batches(batch),
        ),
        &sink,
    );
    let mut pos = sink.take_positive();
    let mut neg = sink.take_negative();
    pos.sort();
    neg.sort();
    (pos, neg)
}

/// Sorted (positive, negative) embedding lists after replaying `events`
/// through the engine's push_event path with the given update mode.
fn push_run(
    query: &QueryGraph,
    events: &[StreamEvent],
    update_mode: UpdateMode,
) -> (Vec<CompleteEmbedding>, Vec<CompleteEmbedding>) {
    let mut engine = engine_with(
        query,
        EngineConfig {
            update_mode,
            ..EngineConfig::sequential()
        },
    );
    let sink = CollectingSink::new();
    engine.run_events(events.iter().copied(), &sink);
    let mut pos = sink.take_positive();
    let mut neg = sink.take_negative();
    pos.sort();
    neg.sort();
    (pos, neg)
}

#[test]
fn enumeration_is_identical_across_pool_widths() {
    let events = small_stream(700, 21);
    for query in [patterns::triangle(), patterns::dual_triangle()] {
        let reference = snapshot_run(&query, &events, 128, 1);
        for threads in [2usize, 8] {
            let run = snapshot_run(&query, &events, 128, threads);
            assert_eq!(
                run, reference,
                "pool width {threads} changed the reported embeddings"
            );
        }
    }
}

#[test]
fn enumeration_is_identical_across_widths_under_skew() {
    // A hub vertex concentrates almost all the enumeration work in a few
    // units: the shape where dynamic scheduling reorders most aggressively.
    let mut events: Vec<StreamEvent> = Vec::new();
    for i in 1..40u32 {
        events.push(StreamEvent::insert(0, i, 0).at(i as u64));
        events.push(StreamEvent::insert(i, 0, 0).at((i + 100) as u64));
        events.push(StreamEvent::insert(i, (i % 39) + 1, 0).at((i + 200) as u64));
    }
    let query = patterns::triangle();
    let reference = snapshot_run(&query, &events, 64, 1);
    assert!(
        !reference.0.is_empty(),
        "skewed stream must produce matches"
    );
    for threads in [2usize, 8] {
        assert_eq!(
            snapshot_run(&query, &events, 64, threads),
            reference,
            "pool width {threads} changed the embeddings on a skewed batch"
        );
    }
}

#[test]
fn batched_and_per_edge_paths_agree_on_insert_only_streams() {
    // On insert-only streams every embedding appears exactly once no matter
    // where the batch boundaries fall, so the full embedding sets must be
    // identical across update modes and against the snapshot path.
    let events: Vec<StreamEvent> = small_stream(500, 33)
        .into_iter()
        .filter(|e| e.is_insert())
        .collect();
    let query = patterns::triangle();
    let reference = push_run(&query, &events, UpdateMode::PerEdge);
    assert!(
        reference.1.is_empty(),
        "insert-only stream reported negatives"
    );
    for batch in [7usize, 64, 4096] {
        assert_eq!(
            push_run(&query, &events, UpdateMode::Batched(batch)),
            reference,
            "engine batch size {batch} changed the embeddings"
        );
    }
    assert_eq!(
        snapshot_run(&query, &events, 64, 1),
        reference,
        "snapshot path diverged from the push_event path"
    );
}

#[test]
fn batched_and_per_edge_paths_agree_on_net_counts_with_deletions() {
    // With deletions the *edge-id* bindings may legitimately differ between
    // batchings (a delete resolves to the most recent matching instance),
    // but the net vertex-mapping multiset — appearances minus retractions —
    // must be identical.
    let events = small_stream(600, 44);
    let query = patterns::path(3);
    let net = |mode: UpdateMode| -> Vec<Vec<u32>> {
        let (pos, neg) = push_run(&query, &events, mode);
        let mut net: Vec<Vec<u32>> = Vec::new();
        let key = |e: &CompleteEmbedding| -> Vec<u32> { e.vertices.iter().map(|v| v.0).collect() };
        let mut counts: std::collections::HashMap<Vec<u32>, i64> = std::collections::HashMap::new();
        for e in &pos {
            *counts.entry(key(e)).or_insert(0) += 1;
        }
        for e in &neg {
            *counts.entry(key(e)).or_insert(0) -= 1;
        }
        for (k, c) in counts {
            assert!(c >= 0, "embedding retracted more often than reported");
            for _ in 0..c {
                net.push(k.clone());
            }
        }
        net.sort();
        net
    };
    let reference = net(UpdateMode::PerEdge);
    for batch in [5usize, 32, 512] {
        assert_eq!(
            net(UpdateMode::Batched(batch)),
            reference,
            "engine batch size {batch} changed the surviving matches"
        );
    }
}
