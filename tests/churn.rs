//! Adversarial churn: the sharded scheduler under register/deregister
//! storms, deletion bursts and mid-stream migrations/rebalances must stay
//! embedding-for-embedding identical to an unsharded oracle session.
//!
//! Every round replays one stream segment through both executors with the
//! same flush boundaries, then mutates the standing-query set the same way
//! on both sides — except migrations and [`ShardedSession::rebalance`]
//! calls, which exist only on the sharded side and must therefore be
//! invisible in the results. Checked in per-edge and batched update modes.
//!
//! [`ShardedSession::rebalance`]: mnemonic::core::shard::ShardedSession::rebalance

use mnemonic::core::api::{LabelEdgeMatcher, UpdateMode};
use mnemonic::core::embedding::CompleteEmbedding;
use mnemonic::core::engine::EngineConfig;
use mnemonic::core::session::{MnemonicSession, QueryHandle};
use mnemonic::core::shard::ShardedSession;
use mnemonic::core::variants::Isomorphism;
use mnemonic::query::patterns;
use mnemonic::query::query_graph::QueryGraph;
use mnemonic::stream::event::StreamEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHARDS: usize = 3;
const ROUNDS: usize = 8;
const EVENTS_PER_ROUND: usize = 30;

/// A mixed stream whose even rounds are insert-heavy and whose odd rounds
/// are *deletion bursts* (70% deletes while edges remain) — churn on the
/// graph to match the churn on the query set.
fn bursty_stream(seed: u64, vertices: u32, labels: u16) -> Vec<StreamEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<(u32, u32, u16)> = Vec::new();
    let mut out = Vec::with_capacity(ROUNDS * EVENTS_PER_ROUND);
    for round in 0..ROUNDS {
        let p_delete = if round % 2 == 0 { 0.15 } else { 0.7 };
        for i in 0..EVENTS_PER_ROUND {
            let ts = (round * EVENTS_PER_ROUND + i) as u64;
            if !live.is_empty() && rng.gen_bool(p_delete) {
                let idx = rng.gen_range(0..live.len());
                let (s, d, l) = live.swap_remove(idx);
                out.push(StreamEvent::delete(s, d, l).at(ts));
            } else {
                let src = rng.gen_range(0..vertices);
                let mut dst = rng.gen_range(0..vertices);
                if dst == src {
                    dst = (dst + 1) % vertices;
                }
                let label = rng.gen_range(0..labels);
                live.push((src, dst, label));
                out.push(StreamEvent::insert(src, dst, label).at(ts));
            }
        }
    }
    out
}

fn pattern(i: usize) -> QueryGraph {
    match i % 4 {
        0 => patterns::triangle(),
        1 => patterns::path(3),
        2 => patterns::rectangle(),
        _ => patterns::dual_triangle(),
    }
}

fn sorted(mut embeddings: Vec<CompleteEmbedding>) -> Vec<CompleteEmbedding> {
    embeddings.sort();
    embeddings
}

/// One live query, registered identically on both executors.
struct LivePair {
    pattern_idx: usize,
    sharded: QueryHandle,
    oracle: QueryHandle,
}

fn check_churn(mode: UpdateMode, seed: u64) {
    let events = bursty_stream(seed, 11, 2);
    let config = EngineConfig {
        update_mode: mode,
        ..EngineConfig::sequential()
    };
    let mut sharded = ShardedSession::builder()
        .shards(SHARDS)
        .config(config.clone())
        .build()
        .expect("valid sharded config");
    let mut oracle = MnemonicSession::builder()
        .config(config)
        .build()
        .expect("valid session config");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);

    let register =
        |sharded: &mut ShardedSession, oracle: &mut MnemonicSession, i: usize| LivePair {
            pattern_idx: i,
            sharded: sharded
                .register_query(
                    pattern(i),
                    Box::new(LabelEdgeMatcher),
                    Box::new(Isomorphism),
                )
                .expect("connected query"),
            oracle: oracle
                .register_query(
                    pattern(i),
                    Box::new(LabelEdgeMatcher),
                    Box::new(Isomorphism),
                )
                .expect("connected query"),
        };

    let mut live: Vec<LivePair> = (0..3)
        .map(|i| register(&mut sharded, &mut oracle, i))
        .collect();
    let mut next_pattern = 3usize;

    for (round, segment) in events.chunks(EVENTS_PER_ROUND).enumerate() {
        sharded
            .run_events(segment.iter().copied())
            .expect("sharded replay succeeds");
        oracle
            .run_events(segment.iter().copied())
            .expect("oracle replay succeeds");

        for pair in &live {
            let got = pair.sharded.drain();
            let want = pair.oracle.drain();
            assert_eq!(
                sorted(got.positive),
                sorted(want.positive),
                "round {round}: positive embeddings diverged for pattern {} (mode {mode:?})",
                pair.pattern_idx
            );
            assert_eq!(
                sorted(got.negative),
                sorted(want.negative),
                "round {round}: negative embeddings diverged for pattern {} (mode {mode:?})",
                pair.pattern_idx
            );
        }

        // Register/deregister storm: both sides mutate identically.
        if !live.is_empty() && rng.gen_bool(0.5) {
            let victim = live.swap_remove(rng.gen_range(0..live.len()));
            sharded.deregister(&victim.sharded).expect("live handle");
            oracle.deregister(&victim.oracle).expect("live handle");
        }
        while rng.gen_bool(0.6) {
            live.push(register(&mut sharded, &mut oracle, next_pattern));
            next_pattern += 1;
        }
        // Scheduler churn, sharded side only: results must not notice.
        if !live.is_empty() && rng.gen_bool(0.5) {
            let pair = &live[rng.gen_range(0..live.len())];
            let to = rng.gen_range(0..SHARDS);
            sharded
                .migrate_query(&pair.sharded, to)
                .expect("live query");
            assert_eq!(sharded.shard_of(&pair.sharded), Some(to));
        }
        if rng.gen_bool(0.3) {
            sharded.rebalance().expect("rebalance during churn");
        }
    }

    assert!(
        !live.is_empty(),
        "churn schedule must leave some query standing"
    );
    for pair in &live {
        assert_eq!(
            pair.sharded.accepted(),
            pair.oracle.accepted(),
            "final accepted count diverged for pattern {}",
            pair.pattern_idx
        );
    }
}

#[test]
fn churn_storm_matches_oracle_per_edge() {
    check_churn(UpdateMode::PerEdge, 2024);
}

#[test]
fn churn_storm_matches_oracle_batched() {
    check_churn(UpdateMode::Batched(5), 4077);
}
