//! Property tests for the word-parallel DEBI / filtering kernels: the
//! batched row recompute must agree with the scalar per-column writes it
//! fused, and the fused-profile top-down pass (one adjacency sweep per
//! vertex) must leave candidacy, DEBI rows and root bits bit-identical to
//! the retained per-label-rescan baseline on arbitrary graphs.

use mnemonic::core::api::LabelEdgeMatcher;
use mnemonic::core::debi::Debi;
use mnemonic::core::filter::{QueryRequirements, TopDownPass, VertexCandidacy};
use mnemonic::core::frontier::UnifiedFrontier;
use mnemonic::core::stats::EngineCounters;
use mnemonic::graph::edge::EdgeTriple;
use mnemonic::graph::ids::{EdgeLabel, VertexId};
use mnemonic::graph::multigraph::StreamingGraph;
use mnemonic::query::patterns;
use mnemonic::query::query_tree::QueryTree;
use mnemonic::query::root::select_root_by_degree;
use proptest::prelude::*;

/// Replay an insert/delete script into a fresh multigraph.
fn build_graph(script: &[(bool, u32, u32, u16)]) -> StreamingGraph {
    let mut graph = StreamingGraph::new();
    let mut live = Vec::new();
    for &(insert, src, dst, label) in script {
        if insert || live.is_empty() {
            live.push(graph.insert_edge(EdgeTriple::new(
                VertexId(src),
                VertexId(dst),
                EdgeLabel(label),
            )));
        } else {
            let idx = (src as usize + dst as usize) % live.len();
            graph.delete_edge(live.swap_remove(idx)).unwrap();
        }
    }
    graph
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `Debi::recompute_rows` == a scalar column-by-column `set` loop, for
    /// arbitrary row payloads over a pre-dirtied index: the fused write must
    /// both set and clear, and must mask columns beyond the query's width.
    #[test]
    fn recompute_rows_matches_scalar_column_writes(
        width in 1u16..6,
        rows in prop::collection::vec(any::<u64>(), 1..40),
        dirty in prop::collection::vec(any::<u64>(), 1..40),
    ) {
        let mut fused = Debi::new(width as usize);
        let mut scalar = Debi::new(width as usize);
        let bound = rows.len().max(dirty.len());
        fused.ensure_rows(bound);
        scalar.ensure_rows(bound);

        // Dirty both indexes identically so stale bits must be overwritten.
        for (edge, &bits) in dirty.iter().enumerate() {
            for col in 0..width {
                fused.set(edge, col, bits & (1 << col) != 0);
                scalar.set(edge, col, bits & (1 << col) != 0);
            }
        }

        let edges: Vec<usize> = (0..rows.len()).collect();
        fused.recompute_rows(&edges, |edge| rows[edge]);
        for (edge, &bits) in rows.iter().enumerate() {
            for col in 0..width {
                scalar.set(edge, col, bits & (1 << col) != 0);
            }
        }

        for edge in 0..bound {
            for col in 0..width {
                prop_assert_eq!(fused.get(edge, col), scalar.get(edge, col));
            }
        }
    }

    /// The fused-profile top-down pass == the retained baseline pass:
    /// identical candidacy masks, DEBI bits and root candidates on random
    /// multigraphs (parallel edges, self-loops, churn, wildcard labels).
    #[test]
    fn fused_top_down_agrees_with_baseline(
        script in prop::collection::vec((any::<bool>(), 0u32..7, 0u32..7, 0u16..3), 1..80),
    ) {
        // Raw label 2 maps to the wildcard to keep unlabelled edges common.
        let script: Vec<_> = script
            .into_iter()
            .map(|(i, s, d, l)| (i, s, d, if l == 2 { u16::MAX } else { l }))
            .collect();
        let graph = build_graph(&script);
        let query = patterns::triangle();
        let tree = QueryTree::build(&query, select_root_by_degree(&query));
        let requirements = QueryRequirements::build(&query);
        let frontier = UnifiedFrontier::build(&graph, graph.live_edges().collect(), false);

        let run_pass = |baseline: bool| {
            let mut candidacy = VertexCandidacy::new();
            candidacy.ensure(graph.vertex_count());
            let mut debi = Debi::new(tree.debi_width());
            debi.ensure_rows(graph.edge_id_bound());
            debi.ensure_roots(graph.vertex_count());
            let counters = EngineCounters::new();
            let pass = TopDownPass {
                graph: &graph,
                query: &query,
                tree: &tree,
                matcher: &LabelEdgeMatcher,
                requirements: &requirements,
            };
            if baseline {
                pass.run_baseline(&frontier, &candidacy, &debi, &counters, false);
            } else {
                pass.run(&frontier, &candidacy, &debi, &counters, false);
            }
            let masks: Vec<u64> = (0..graph.vertex_count())
                .map(|v| candidacy.mask(VertexId(v as u32)))
                .collect();
            let bits: Vec<bool> = (0..graph.edge_id_bound())
                .flat_map(|e| (0..tree.debi_width() as u16).map(move |c| (e, c)))
                .map(|(e, c)| debi.get(e, c))
                .collect();
            (masks, bits, debi.root_candidates())
        };

        let dense = run_pass(false);
        let baseline = run_pass(true);
        prop_assert_eq!(dense, baseline);
    }
}
