//! Fairness under per-query budgets: one enumeration-heavy wildcard cycle
//! sharing a session with three cheap label-selective paths, run under a
//! tight [`QueryBudget`]. The budget must (a) actually bite on the heavy
//! query (deferrals recorded), (b) never touch the cheap queries, and
//! (c) lose nothing — after [`MnemonicSession::finish`] the embedding
//! multiset of every query equals an unbudgeted run and the deferred
//! backlog reads zero.
//!
//! [`QueryBudget`]: mnemonic::core::rebalance::QueryBudget
//! [`MnemonicSession::finish`]: mnemonic::core::session::MnemonicSession::finish

use mnemonic::core::api::LabelEdgeMatcher;
use mnemonic::core::embedding::CompleteEmbedding;
use mnemonic::core::rebalance::QueryBudget;
use mnemonic::core::session::{MnemonicSession, QueryHandle, SessionBuilder};
use mnemonic::core::variants::Isomorphism;
use mnemonic::query::patterns;
use mnemonic::query::query_graph::QueryGraph;
use mnemonic::stream::event::StreamEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One wildcard 4-cycle (enumeration-heavy: every edge matches all four
/// query edges, so a full batch can spawn `4 × batch` work units) and three
/// cheap paths whose two edge labels are *distinct*, so each batch edge
/// matches at most one query edge — at most `batch` work units per batch,
/// which a budget of one batch's worth never parks.
fn query_set() -> Vec<QueryGraph> {
    let w = mnemonic::graph::ids::WILDCARD_VERTEX_LABEL.0;
    vec![
        patterns::cycle(4),
        patterns::labelled_path(&[w, w, w], &[0, 1]),
        patterns::labelled_path(&[w, w, w], &[1, 2]),
        patterns::labelled_path(&[w, w, w], &[2, 0]),
    ]
}

fn insert_stream(seed: u64, vertices: u32, events: usize) -> Vec<StreamEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..events as u64)
        .map(|ts| {
            let src = rng.gen_range(0..vertices);
            let mut dst = rng.gen_range(0..vertices);
            if dst == src {
                dst = (dst + 1) % vertices;
            }
            StreamEvent::insert(src, dst, rng.gen_range(0..3)).at(ts)
        })
        .collect()
}

fn mixed_stream(seed: u64, vertices: u32, events: usize) -> Vec<StreamEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<(u32, u32, u16)> = Vec::new();
    let mut out = Vec::with_capacity(events);
    for ts in 0..events as u64 {
        if !live.is_empty() && rng.gen_bool(0.25) {
            let idx = rng.gen_range(0..live.len());
            let (s, d, l) = live.swap_remove(idx);
            out.push(StreamEvent::delete(s, d, l).at(ts));
        } else {
            let src = rng.gen_range(0..vertices);
            let mut dst = rng.gen_range(0..vertices);
            if dst == src {
                dst = (dst + 1) % vertices;
            }
            let label = rng.gen_range(0..3);
            live.push((src, dst, label));
            out.push(StreamEvent::insert(src, dst, label).at(ts));
        }
    }
    out
}

fn sorted(mut embeddings: Vec<CompleteEmbedding>) -> Vec<CompleteEmbedding> {
    embeddings.sort();
    embeddings
}

fn builder() -> SessionBuilder {
    MnemonicSession::builder().sequential().batch_size(8)
}

/// Run the stream to completion (including the finish() drain) and return
/// per-query (positive, negative) results plus the handles for stats.
fn run_to_end(
    mut session: MnemonicSession,
    events: &[StreamEvent],
) -> Vec<(QueryHandle, Vec<CompleteEmbedding>, Vec<CompleteEmbedding>)> {
    let handles: Vec<QueryHandle> = query_set()
        .into_iter()
        .map(|q| {
            session
                .register_query(q, Box::new(LabelEdgeMatcher), Box::new(Isomorphism))
                .expect("connected query")
        })
        .collect();
    session
        .run_events(events.iter().copied())
        .expect("replay succeeds");
    session.finish().expect("finish drains the backlog");
    handles
        .into_iter()
        .map(|h| {
            let r = h.drain();
            (h, r.positive, r.negative)
        })
        .collect()
}

#[test]
fn tight_budget_defers_the_heavy_query_without_starving_the_cheap_ones() {
    let events = insert_stream(7, 9, 160);

    let unbudgeted = run_to_end(builder().build().unwrap(), &events);
    let budgeted = run_to_end(
        builder()
            .query_budget(QueryBudget::units(8))
            .build()
            .unwrap(),
        &events,
    );

    // The budget bit on the heavy wildcard cycle...
    let heavy = budgeted[0].0.budget_stats();
    assert!(heavy.deferred_units > 0, "heavy query must hit the budget");
    assert!(heavy.deferral_batches > 0);
    // ...but nothing was lost: backlog drained and results are identical.
    for (q, ((bh, bp, bn), (_, up, un))) in budgeted.iter().zip(&unbudgeted).enumerate() {
        let stats = bh.budget_stats();
        assert_eq!(
            stats.backlog_units, 0,
            "query {q}: finish() must drain every deferred unit"
        );
        assert_eq!(stats.completed_deferred_units, stats.deferred_units);
        assert_eq!(
            sorted(bp.clone()),
            sorted(up.clone()),
            "query {q}: budget changed the positive embedding multiset"
        );
        assert_eq!(
            sorted(bn.clone()),
            sorted(un.clone()),
            "query {q}: budget changed the negative embedding multiset"
        );
    }

    // The cheap label-selective paths fit comfortably in the budget: they
    // must never be deferred — the whole point of per-query (rather than
    // per-batch) budgets is that one pathological query cannot starve its
    // co-tenants.
    for (q, (handle, _, _)) in budgeted.iter().enumerate().skip(1) {
        let stats = handle.budget_stats();
        assert_eq!(
            stats.deferred_units, 0,
            "cheap query {q} was deferred by the heavy query's overflow"
        );
        assert!(handle.accepted() > 0, "cheap query {q} found nothing");
    }
}

/// Deletion batches force-drain the deferred backlog first (stored frontier
/// bitsets must not see recycled edge ids), so a budgeted run over a mixed
/// insert/delete stream is the sharper exactness check.
#[test]
fn budget_stays_exact_under_deletions() {
    let events = mixed_stream(23, 9, 200);

    let unbudgeted = run_to_end(builder().build().unwrap(), &events);
    let budgeted = run_to_end(
        builder()
            .query_budget(QueryBudget::units(8))
            .build()
            .unwrap(),
        &events,
    );

    assert!(
        budgeted
            .iter()
            .any(|(h, _, _)| h.budget_stats().deferred_units > 0),
        "fixture must actually exercise deferral"
    );
    for (q, ((bh, bp, bn), (_, up, un))) in budgeted.iter().zip(&unbudgeted).enumerate() {
        assert_eq!(bh.budget_stats().backlog_units, 0);
        assert_eq!(
            sorted(bp.clone()),
            sorted(up.clone()),
            "query {q}: positive embeddings diverged under budget + deletions"
        );
        assert_eq!(
            sorted(bn.clone()),
            sorted(un.clone()),
            "query {q}: negative embeddings diverged under budget + deletions"
        );
    }
}
