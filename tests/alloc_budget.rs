//! Allocation-count regression test for the batch hot path.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! phase (graph growth, scratch-buffer sizing, thread-local warm-up) the
//! steady-state per-batch ingest path must perform at most a fixed small
//! number of heap allocations. This pins the PR-5 scratch-reuse work —
//! recycled `DeltaBatch` shells, generation-cleared frontier bitsets,
//! pooled work-unit vectors, inline backtracking state — so it cannot
//! silently regress: reintroducing a per-edge, per-candidate or
//! per-work-unit allocation (the pre-optimisation behaviour) costs hundreds
//! to thousands of allocations per batch and trips the budget immediately.
//!
//! This file holds exactly one test so no concurrent test case can pollute
//! the global counter.

use mnemonic::core::api::LabelEdgeMatcher;
use mnemonic::core::session::MnemonicSession;
use mnemonic::core::variants::Isomorphism;
use mnemonic::query::patterns;
use mnemonic::stream::event::StreamEvent;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper counting every allocation and reallocation.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Steady-state heap-allocation budget per ingested batch (64 events of
/// insert/delete churn, two standing queries). The measured steady state is
/// ~12 allocations — per-batch outcome reporting (`SessionBatchResult`,
/// counter snapshots, per-query vectors) and the work-unit sort's key cache
/// — all independent of batch size, candidate count and work-unit count.
/// The budget leaves ~4× headroom for toolchain noise while staying far
/// below the cost of any reintroduced per-edge or per-unit allocation.
const PER_BATCH_BUDGET: u64 = 48;

/// Insert/delete churn over a fixed 16-vertex ring: each round inserts 32
/// ring edges and then deletes them again, so after warm-up the graph's
/// placeholder table, adjacency capacity, DEBI rows and recycler free lists
/// all stop growing — every later batch exercises the pure steady state.
fn churn_events(rounds: usize) -> Vec<StreamEvent> {
    let mut events = Vec::new();
    for round in 0..rounds {
        for i in 0..32u32 {
            let (src, dst) = (i % 16, (i + 1) % 16);
            events.push(StreamEvent::insert(src, dst, 0).at((round * 64 + i as usize) as u64));
        }
        for i in 0..32u32 {
            let (src, dst) = (i % 16, (i + 1) % 16);
            events.push(StreamEvent::delete(src, dst, 0).at((round * 64 + 32 + i as usize) as u64));
        }
    }
    events
}

#[test]
fn steady_state_batches_stay_within_allocation_budget() {
    let mut session = MnemonicSession::builder()
        .sequential()
        .batch_size(64)
        .build()
        .expect("valid config");
    // Two standing queries so the pooled enumeration path (per-query
    // decomposition, unit tagging, masking, backtracking) is exercised.
    // Both are chosen to *enumerate without completing*: the 16-ring matches
    // the triangle's degree profile (so DEBI fills, work units spawn and
    // backtracking runs every batch) but contains no triangle, and the
    // labelled path uses labels absent from the stream. Completed embeddings
    // are deliberately zero because materialising a result
    // (`CompleteEmbedding`) allocates by design — this test pins the
    // *pipeline's* allocations, which must not scale with batch size,
    // candidates or work units.
    let triangle = session
        .register_query(
            patterns::triangle(),
            Box::new(LabelEdgeMatcher),
            Box::new(Isomorphism),
        )
        .expect("connected query");
    let w = mnemonic::graph::ids::WILDCARD_VERTEX_LABEL.0;
    session
        .register_query(
            patterns::labelled_path(&[w, w, w], &[7, 7]),
            Box::new(LabelEdgeMatcher),
            Box::new(Isomorphism),
        )
        .expect("connected query");

    // Warm-up: grow the graph, size every scratch buffer, warm the
    // thread-local candidacy scratch, fill the recycler free lists.
    for event in churn_events(8) {
        session.push_event(event).expect("warm-up ingest succeeds");
    }

    // Steady state: every batch recycles what the warm-up allocated.
    const MEASURED_BATCHES: usize = 16;
    let events = churn_events(MEASURED_BATCHES);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut batches = 0u64;
    for event in events {
        if session
            .push_event(event)
            .expect("steady-state ingest succeeds")
            .is_some()
        {
            batches += 1;
        }
    }
    let allocations = ALLOCATIONS.load(Ordering::Relaxed) - before;

    assert_eq!(batches, MEASURED_BATCHES as u64, "one flush per 64 events");
    let per_batch = allocations / batches;
    assert!(
        per_batch <= PER_BATCH_BUDGET,
        "steady-state batch path allocated {per_batch} times per batch \
         ({allocations} over {batches} batches); budget is {PER_BATCH_BUDGET}. \
         A per-edge/per-candidate/per-work-unit allocation crept back into \
         the hot path — see crates/core/src/pipeline (BatchScratch) and \
         crates/core/src/frontier.rs (FrontierScratch)."
    );

    // The fixture must genuinely exercise the enumeration hot path — work
    // units spawned and backtracked every round — not an idle pipeline.
    assert!(
        triangle.counters().work_units > 0,
        "the ring churn must keep spawning triangle work units"
    );
    assert_eq!(
        triangle.accepted(),
        0,
        "the fixture is constructed to complete no embeddings"
    );
    assert!(
        session.snapshots_processed() >= 24,
        "the fixture must actually ingest batches"
    );
}
