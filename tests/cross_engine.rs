//! Cross-engine consistency: the incremental Mnemonic engine, the
//! TurboFlux-style sequential baseline and the CECI-style per-snapshot
//! recomputation must agree on how many embeddings a stream produces.

use mnemonic::baselines::ceci::CeciLike;
use mnemonic::baselines::turboflux::TurboFluxLike;
use mnemonic::core::api::LabelEdgeMatcher;
use mnemonic::core::embedding::CountingSink;
use mnemonic::core::engine::{EngineConfig, Mnemonic};
use mnemonic::core::variants::Isomorphism;
use mnemonic::datagen::{netflow_like, NetflowConfig};
use mnemonic::graph::edge::EdgeTriple;
use mnemonic::graph::multigraph::StreamingGraph;
use mnemonic::query::patterns;
use mnemonic::query::query_graph::QueryGraph;
use mnemonic::stream::config::StreamConfig;
use mnemonic::stream::event::StreamEvent;
use mnemonic::stream::generator::SnapshotGenerator;
use mnemonic::stream::source::VecSource;

fn small_stream() -> Vec<StreamEvent> {
    netflow_like(NetflowConfig {
        vertices: 60,
        events: 600,
        edge_labels: 2,
        seed: 5,
    })
}

/// Count embeddings reported by Mnemonic over the whole stream (no
/// bootstrap, so the total equals the embedding count of the final graph).
fn mnemonic_total(query: &QueryGraph, events: &[StreamEvent], batch: usize, threads: usize) -> u64 {
    let mut engine = Mnemonic::new(
        query.clone(),
        Box::new(LabelEdgeMatcher),
        Box::new(Isomorphism),
        if threads <= 1 {
            EngineConfig::sequential()
        } else {
            EngineConfig::with_threads(threads)
        },
    );
    let sink = CountingSink::new();
    engine.run_stream(
        SnapshotGenerator::new(
            VecSource::new(events.to_vec()),
            StreamConfig::batches(batch),
        ),
        &sink,
    );
    sink.positive() - sink.negative()
}

fn turboflux_total(query: &QueryGraph, events: &[StreamEvent]) -> u64 {
    let mut tf = TurboFluxLike::new(query.clone());
    let delta = tf.process_batch(events);
    delta.new_embeddings - delta.removed_embeddings
}

#[test]
fn triangle_counts_agree_across_engines() {
    let events = small_stream();
    let query = patterns::triangle();
    let mn = mnemonic_total(&query, &events, 128, 1);
    let tf = turboflux_total(&query, &events);
    assert_eq!(mn, tf, "Mnemonic vs TurboFlux-style triangle counts");

    // CECI counts vertex mappings on the final graph; with no parallel data
    // edges matching the same vertex pair more than once per query edge the
    // counts coincide with edge-mapping counts only if no parallel edges
    // exist, so compare against the edge-aware engines via a parallel-edge
    // free graph instead.
    let mut simple = StreamingGraph::new();
    let mut seen = std::collections::HashSet::new();
    let dedup: Vec<StreamEvent> = events
        .iter()
        .copied()
        .filter(|e| seen.insert((e.src, e.dst)))
        .collect();
    for e in &dedup {
        simple.insert_edge(EdgeTriple::new(e.src, e.dst, e.label));
    }
    let ceci = CeciLike::count_snapshot(&simple, &query) as u64;
    let mn_simple = mnemonic_total(&query, &dedup, 64, 1);
    assert_eq!(ceci, mn_simple, "CECI-style vs Mnemonic on a simple graph");
}

#[test]
fn batch_size_does_not_change_the_result() {
    let events = small_stream();
    let query = patterns::path(3);
    let reference = mnemonic_total(&query, &events, 1, 1);
    for batch in [7, 64, 512, 4096] {
        assert_eq!(
            mnemonic_total(&query, &events, batch, 1),
            reference,
            "batch size {batch} changed the result"
        );
    }
}

#[test]
fn thread_count_does_not_change_the_result() {
    let events = small_stream();
    let query = patterns::dual_triangle();
    let reference = mnemonic_total(&query, &events, 128, 1);
    for threads in [2, 4] {
        assert_eq!(
            mnemonic_total(&query, &events, 128, threads),
            reference,
            "thread count {threads} changed the result"
        );
    }
}
