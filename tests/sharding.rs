//! Sharding and pipeline-stage integration tests.
//!
//! The central check: a [`ShardedSession`] with N ∈ {1, 2, 4} shards must be
//! embedding-for-embedding identical — vertex *and* edge bindings, positive
//! and negative — to an unsharded [`MnemonicSession`] over the same mixed
//! insert/delete stream, in per-edge and batched update modes, including a
//! mid-stream deregistration of one query on one shard. Semantically a
//! shard broadcast changes only the schedule, never the results.
//!
//! The second half drives the staged update pipeline by hand: a hand-built
//! [`DeltaBatch`] pushed through the public stages (`GraphUpdate` →
//! `FrontierBuild` → `Filtering` → `DeletionResolve` → `Enumerate`) must
//! produce the same outcome as the orchestrated
//! [`MnemonicSession::apply_snapshot`] path did before the refactor.

use mnemonic::core::api::LabelEdgeMatcher;
use mnemonic::core::api::UpdateMode;
use mnemonic::core::embedding::CompleteEmbedding;
use mnemonic::core::engine::EngineConfig;
use mnemonic::core::pipeline::{
    DeletionResolve, DeltaBatch, Enumerate, Filtering, FrontierBuild, GraphUpdate,
};
use mnemonic::core::session::{MnemonicSession, QueryHandle};
use mnemonic::core::shard::ShardedSession;
use mnemonic::core::variants::Isomorphism;
use mnemonic::query::patterns;
use mnemonic::query::query_graph::QueryGraph;
use mnemonic::stream::event::StreamEvent;
use mnemonic::stream::snapshot::Snapshot;
use mnemonic::stream::source::{Broadcast, EventSource, VecSource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic mixed insert/delete stream (same construction as
/// `tests/session.rs`).
fn mixed_stream(seed: u64, vertices: u32, labels: u16, events: usize) -> Vec<StreamEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<(u32, u32, u16)> = Vec::new();
    let mut out = Vec::with_capacity(events);
    for ts in 0..events as u64 {
        if !live.is_empty() && rng.gen_bool(0.25) {
            let idx = rng.gen_range(0..live.len());
            let (s, d, l) = live.swap_remove(idx);
            out.push(StreamEvent::delete(s, d, l).at(ts));
        } else {
            let src = rng.gen_range(0..vertices);
            let mut dst = rng.gen_range(0..vertices);
            if dst == src {
                dst = (dst + 1) % vertices;
            }
            let label = rng.gen_range(0..labels);
            live.push((src, dst, label));
            out.push(StreamEvent::insert(src, dst, label).at(ts));
        }
    }
    out
}

fn query_set() -> Vec<QueryGraph> {
    vec![
        patterns::triangle(),
        patterns::path(3),
        patterns::rectangle(),
        patterns::dual_triangle(),
    ]
}

fn config_with(mode: UpdateMode) -> EngineConfig {
    EngineConfig {
        update_mode: mode,
        ..EngineConfig::sequential()
    }
}

fn sorted(mut embeddings: Vec<CompleteEmbedding>) -> Vec<CompleteEmbedding> {
    embeddings.sort();
    embeddings
}

fn register_all(session: &mut MnemonicSession) -> Vec<QueryHandle> {
    query_set()
        .into_iter()
        .map(|q| {
            session
                .register_query(q, Box::new(LabelEdgeMatcher), Box::new(Isomorphism))
                .expect("connected query")
        })
        .collect()
}

fn register_all_sharded(session: &mut ShardedSession) -> Vec<QueryHandle> {
    query_set()
        .into_iter()
        .map(|q| {
            session
                .register_query(q, Box::new(LabelEdgeMatcher), Box::new(Isomorphism))
                .expect("connected query")
        })
        .collect()
}

/// Replay the same stream through an unsharded session and through sharded
/// sessions with 1, 2 and 4 shards; every query must report identical
/// embedding sets. The two replays are fed from one `Broadcast` split of a
/// single source, exercising the fan-out helper on the way.
fn check_sharded_matches_unsharded(mode: UpdateMode) {
    let events = mixed_stream(71, 12, 2, 140);

    let mut reference = MnemonicSession::builder()
        .config(config_with(mode))
        .build()
        .expect("valid session config");
    let reference_handles = register_all(&mut reference);
    reference
        .run_events(events.iter().copied())
        .expect("unsharded replay succeeds");
    let reference_results: Vec<_> = reference_handles.iter().map(|h| h.drain()).collect();

    for shards in [1usize, 2, 4] {
        let mut sharded = ShardedSession::builder()
            .shards(shards)
            .config(config_with(mode))
            .build()
            .expect("valid sharded config");
        let handles = register_all_sharded(&mut sharded);
        // Feed the sharded run through a Broadcast split: the second
        // consumer double-checks that the fan-out itself is lossless.
        let mut consumers = Broadcast::split(VecSource::new(events.clone()), 2);
        let audit = consumers.pop().expect("two consumers");
        let feed = consumers.pop().expect("two consumers");
        sharded.run_source(feed).expect("sharded replay succeeds");
        assert_eq!(
            audit.size_hint(),
            Some(events.len()),
            "the audit consumer must still see the whole stream"
        );

        for (qi, (reference_result, handle)) in reference_results.iter().zip(&handles).enumerate() {
            let got = handle.drain();
            assert_eq!(
                sorted(got.positive),
                sorted(reference_result.positive.clone()),
                "query {qi}: positive embeddings diverged at {shards} shards (mode {mode:?})"
            );
            assert_eq!(
                sorted(got.negative),
                sorted(reference_result.negative.clone()),
                "query {qi}: negative embeddings diverged at {shards} shards (mode {mode:?})"
            );
            // Per-query stats line up too: the counts both executors report
            // through the handle's counter snapshot must agree.
            assert_eq!(
                handle.counters().embeddings_emitted,
                reference_handles[qi].counters().embeddings_emitted,
                "query {qi}: emitted-counter diverged at {shards} shards"
            );
        }
    }
}

#[test]
fn sharded_matches_unsharded_per_edge() {
    check_sharded_matches_unsharded(UpdateMode::PerEdge);
}

#[test]
fn sharded_matches_unsharded_batched() {
    check_sharded_matches_unsharded(UpdateMode::Batched(7));
}

#[test]
fn mid_stream_deregistration_on_a_shard_leaves_other_queries_exact() {
    let events = mixed_stream(83, 10, 2, 120);
    let (first, second) = events.split_at(60);
    let mode = UpdateMode::Batched(16);

    let mut sharded = ShardedSession::builder()
        .shards(4)
        .config(config_with(mode))
        .build()
        .unwrap();
    let handles = register_all_sharded(&mut sharded);
    sharded.run_events(first.iter().copied()).unwrap();
    // Deregister the rectangle query from its shard, mid-stream.
    let victim = &handles[2];
    let victim_before = victim.accepted();
    sharded.deregister(victim).unwrap();
    assert_eq!(sharded.query_count(), 3);
    sharded.run_events(second.iter().copied()).unwrap();
    assert_eq!(
        victim.accepted(),
        victim_before,
        "a deregistered query must stop receiving embeddings"
    );

    // The survivors stay exact vs an unsharded session replayed with the
    // same flush boundaries (run_events drains its tail, so the reference
    // splits the stream at the deregistration point too).
    let mut reference = MnemonicSession::builder()
        .config(config_with(mode))
        .build()
        .unwrap();
    let reference_handles = register_all(&mut reference);
    reference.run_events(first.iter().copied()).unwrap();
    reference.deregister(&reference_handles[2]).unwrap();
    reference.run_events(second.iter().copied()).unwrap();

    for qi in [0usize, 1, 3] {
        let got = handles[qi].drain();
        let want = reference_handles[qi].drain();
        assert_eq!(
            sorted(got.positive),
            sorted(want.positive),
            "survivor query {qi}: positive embeddings diverged"
        );
        assert_eq!(
            sorted(got.negative),
            sorted(want.negative),
            "survivor query {qi}: negative embeddings diverged"
        );
    }
}

// ---------------------------------------------------------------------------
// Pipeline stages, driven by hand.
// ---------------------------------------------------------------------------

fn staged_session() -> (MnemonicSession, Vec<QueryHandle>) {
    let mut session = MnemonicSession::builder()
        .sequential()
        .batch_size(64)
        .build()
        .unwrap();
    let handles = register_all(&mut session);
    (session, handles)
}

/// A hand-built [`DeltaBatch`] pushed through the public stages must produce
/// exactly what the orchestrated `apply_snapshot` path produces — the same
/// per-query embedding deltas, the same buffered embeddings, the same graph.
#[test]
fn hand_built_delta_batch_matches_apply_snapshot() {
    let events = mixed_stream(97, 9, 2, 48);
    let (bootstrap, delta) = events.split_at(32);
    let snapshot = Snapshot::from_events(1, delta.iter().copied());

    // Reference: the orchestrated path.
    let (mut orchestrated, orchestrated_handles) = staged_session();
    orchestrated
        .apply_snapshot(&Snapshot::from_events(0, bootstrap.iter().copied()))
        .unwrap();
    let reference = orchestrated.apply_snapshot(&snapshot).unwrap();

    // Same session state, but the batch is staged by hand.
    let (mut staged, staged_handles) = staged_session();
    staged
        .apply_snapshot(&Snapshot::from_events(0, bootstrap.iter().copied()))
        .unwrap();
    let mut batch = DeltaBatch::from_snapshot(&snapshot);
    assert!(batch.has_deletions(), "fixture must exercise both halves");
    GraphUpdate::apply_insertions(&mut staged, &mut batch).unwrap();
    FrontierBuild::for_insertions(&staged, &mut batch);
    Filtering::insertions(&mut staged, &mut batch);
    Enumerate::positive(&staged, &mut batch);
    DeletionResolve::run(&staged, &mut batch);
    FrontierBuild::for_deletions(&staged, &mut batch);
    Enumerate::negative(&staged, &mut batch);
    GraphUpdate::apply_deletions(&mut staged, &mut batch);
    Filtering::deletions(&mut staged, &mut batch);

    // The staged intermediates line up with the sealed reference outcome.
    assert_eq!(batch.snapshot_id, reference.snapshot_id);
    assert_eq!(batch.inserted.len(), reference.insertions);
    assert_eq!(batch.deletions_applied, reference.deletions);
    for (i, (id, result)) in reference.per_query.iter().enumerate() {
        assert_eq!(
            batch.new_embeddings[i], result.new_embeddings,
            "query {id:?}: new-embedding delta diverged"
        );
        assert_eq!(
            batch.removed_embeddings[i], result.removed_embeddings,
            "query {id:?}: removed-embedding delta diverged"
        );
    }

    // And the externally observable state is identical: same buffered
    // embeddings per handle, same graph.
    for (qi, (got, want)) in staged_handles.iter().zip(&orchestrated_handles).enumerate() {
        let got = got.drain();
        let want = want.drain();
        assert_eq!(
            sorted(got.positive),
            sorted(want.positive),
            "query {qi}: staged positive embeddings diverged"
        );
        assert_eq!(
            sorted(got.negative),
            sorted(want.negative),
            "query {qi}: staged negative embeddings diverged"
        );
    }
    assert_eq!(
        staged.graph().live_edge_count(),
        orchestrated.graph().live_edge_count()
    );

    // Both sessions keep ingesting identically after the staged batch.
    let tail = Snapshot::from_events(2, mixed_stream(101, 9, 2, 16));
    let a = orchestrated.apply_snapshot(&tail).unwrap();
    let b = staged.apply_snapshot(&tail).unwrap();
    assert_eq!(a.total_new_embeddings(), b.total_new_embeddings());
    assert_eq!(a.total_removed_embeddings(), b.total_removed_embeddings());
}

/// The stage timing slices land where the contract says they land.
#[test]
fn stages_record_their_own_timing_slices() {
    let (mut session, _handles) = staged_session();
    let mut batch = DeltaBatch::from_snapshot(&Snapshot::from_events(
        0,
        [
            StreamEvent::insert(0, 1, 0),
            StreamEvent::insert(1, 2, 0),
            StreamEvent::insert(2, 0, 0),
        ],
    ));
    assert_eq!(batch.timings.total(), std::time::Duration::ZERO);
    GraphUpdate::apply_insertions(&mut session, &mut batch).unwrap();
    assert!(batch.timings.graph_update > std::time::Duration::ZERO);
    FrontierBuild::for_insertions(&session, &mut batch);
    assert!(batch.timings.frontier > std::time::Duration::ZERO);
    Filtering::insertions(&mut session, &mut batch);
    assert!(batch.timings.top_down > std::time::Duration::ZERO);
    Enumerate::positive(&session, &mut batch);
    assert!(batch.timings.enumeration > std::time::Duration::ZERO);
    assert_eq!(batch.timings.bottom_up, std::time::Duration::ZERO);
    assert_eq!(
        batch.new_embeddings[0], 3,
        "the triangle query reports its three rotational mappings"
    );
}

/// Per-query stats through the handle: counters survive deregistration and
/// the enumeration-time attribution sums to the session total, sharded and
/// unsharded alike.
#[test]
fn per_query_stats_attribute_enumeration_time() {
    let events = mixed_stream(113, 10, 2, 100);

    let mut session = MnemonicSession::builder()
        .sequential()
        .batch_size(16)
        .build()
        .unwrap();
    let handles = register_all(&mut session);
    session.run_events(events.iter().copied()).unwrap();

    let total = session.enumeration_time();
    let per_query: Vec<_> = handles.iter().map(|h| h.stats()).collect();
    assert_eq!(
        total,
        per_query.iter().map(|s| s.enumeration).sum(),
        "the session total is exactly the sum of the per-query attributions"
    );
    let share_sum: f64 = per_query.iter().map(|s| s.enumeration_share(total)).sum();
    assert!(total.is_zero() || (share_sum - 1.0).abs() < 1e-9);
    for (h, stats) in handles.iter().zip(&per_query) {
        assert_eq!(stats.counters.embeddings_emitted, h.accepted());
    }

    // Counters stay readable after deregistration, frozen at their final
    // values.
    let frozen = handles[0].counters();
    session.deregister(&handles[0]).unwrap();
    assert_eq!(handles[0].counters(), frozen);

    // A sharded run attributes per-query work the same way: identical
    // counter snapshots per query, and its own total equals its per-query
    // sum across shards.
    let mut sharded = ShardedSession::builder()
        .shards(2)
        .sequential()
        .batch_size(16)
        .build()
        .unwrap();
    let sharded_handles = register_all_sharded(&mut sharded);
    sharded.run_events(events.iter().copied()).unwrap();
    assert_eq!(
        sharded.enumeration_time(),
        sharded_handles
            .iter()
            .map(|h| h.enumeration_time())
            .sum::<std::time::Duration>()
    );
    for (qi, (sh, uh)) in sharded_handles.iter().zip(&handles).enumerate() {
        assert_eq!(
            sh.counters().embeddings_emitted,
            uh.counters().embeddings_emitted,
            "query {qi}: sharded emitted-counter diverged from unsharded"
        );
    }
}

/// Deregistering the last query of a shard must drop that shard out of the
/// broadcast scope: its graph freezes while it idles (no wasted update
/// work, no broadcasts into a query-less shard), and the next registration
/// that lands there resyncs the graph before priming — so results stay
/// exact across the idle gap.
#[test]
fn empty_shards_skip_broadcasts_and_stay_exact_after_resync() {
    let events = mixed_stream(59, 10, 2, 150);
    let (first, second, third) = {
        let (a, rest) = events.split_at(50);
        let (b, c) = rest.split_at(50);
        (a, b, c)
    };
    let mode = UpdateMode::Batched(8);

    let mut sharded = ShardedSession::builder()
        .shards(2)
        .config(config_with(mode))
        .build()
        .unwrap();
    let triangles = sharded
        .register_query(
            patterns::triangle(),
            Box::new(LabelEdgeMatcher),
            Box::new(Isomorphism),
        )
        .unwrap();
    let paths = sharded
        .register_query(
            patterns::path(3),
            Box::new(LabelEdgeMatcher),
            Box::new(Isomorphism),
        )
        .unwrap();
    let idle = sharded.shard_of(&paths).expect("registered");
    let busy = sharded.shard_of(&triangles).expect("registered");
    assert_ne!(idle, busy);

    sharded.run_events(first.iter().copied()).unwrap();
    sharded.deregister(&paths).unwrap();

    // While the shard idles, broadcasts skip it entirely: its graph pins.
    let frozen_edges = sharded.shard(idle).unwrap().graph().live_edge_count();
    sharded.run_events(second.iter().copied()).unwrap();
    assert_eq!(
        sharded.shard(idle).unwrap().graph().live_edge_count(),
        frozen_edges,
        "an empty shard must not receive broadcasts"
    );
    assert_ne!(
        sharded.shard(busy).unwrap().graph().live_edge_count(),
        frozen_edges,
        "the active shard keeps ingesting (fixture sanity)"
    );

    // Re-registering onto the freed shard resyncs it and stays exact.
    let rects = sharded
        .register_query(
            patterns::rectangle(),
            Box::new(LabelEdgeMatcher),
            Box::new(Isomorphism),
        )
        .unwrap();
    assert_eq!(sharded.shard_of(&rects), Some(idle));
    assert_eq!(
        sharded.shard(idle).unwrap().graph().live_edge_count(),
        sharded.shard(busy).unwrap().graph().live_edge_count(),
        "registration must resync the idle shard's graph"
    );
    sharded.run_events(third.iter().copied()).unwrap();

    // Oracle: unsharded session with the same registration schedule and the
    // same flush boundaries.
    let mut oracle = MnemonicSession::builder()
        .config(config_with(mode))
        .build()
        .unwrap();
    let o_triangles = oracle
        .register_query(
            patterns::triangle(),
            Box::new(LabelEdgeMatcher),
            Box::new(Isomorphism),
        )
        .unwrap();
    let o_paths = oracle
        .register_query(
            patterns::path(3),
            Box::new(LabelEdgeMatcher),
            Box::new(Isomorphism),
        )
        .unwrap();
    oracle.run_events(first.iter().copied()).unwrap();
    oracle.deregister(&o_paths).unwrap();
    oracle.run_events(second.iter().copied()).unwrap();
    let o_rects = oracle
        .register_query(
            patterns::rectangle(),
            Box::new(LabelEdgeMatcher),
            Box::new(Isomorphism),
        )
        .unwrap();
    oracle.run_events(third.iter().copied()).unwrap();

    for (name, got, want) in [
        ("triangle", &triangles, &o_triangles),
        ("rectangle", &rects, &o_rects),
    ] {
        let g = got.drain();
        let w = want.drain();
        assert_eq!(
            sorted(g.positive),
            sorted(w.positive),
            "{name}: positive embeddings diverged across the idle gap"
        );
        assert_eq!(
            sorted(g.negative),
            sorted(w.negative),
            "{name}: negative embeddings diverged across the idle gap"
        );
    }
}
