#!/usr/bin/env bash
# Tier-1 CI gate for the Mnemonic workspace. Run from the repo root.
#
#   ./ci.sh         # full gate: fmt, clippy, release build, tests, bench compile, docs
#   ./ci.sh quick   # skip the release build and bench compile (inner dev loop)
#
# Every step must pass for the script to exit 0.

set -euo pipefail
cd "$(dirname "$0")"

quick="${1:-}"

step() {
    printf '\n==> %s\n' "$*"
    "$@"
}

# Perf gates print a machine-readable `gate-ratio: ...` line; gate_step
# captures it so the end of the run can print a one-line perf summary
# (the measured trajectory across skew / multi-query / shard / hot-path).
gate_ratios=""
gate_step() {
    printf '\n==> %s\n' "$*"
    local out
    out=$("$@" | tee /dev/stderr) || return 1
    local ratio
    ratio=$(printf '%s\n' "$out" | sed -n 's/^gate-ratio: //p' | head -1)
    if [ -n "$ratio" ]; then
        gate_ratios="${gate_ratios:+$gate_ratios | }$ratio"
    fi
}

step cargo fmt --all --check

step cargo clippy --workspace --all-targets -- -D warnings

if [ "$quick" != "quick" ]; then
    step cargo build --release
fi

step cargo test -q --workspace

if [ "$quick" != "quick" ]; then
    step cargo bench --workspace --no-run
    # Skew-balancing smoke check: on a skewed enumeration workload the
    # work-stealing pool must not regress wall-clock vs the legacy static
    # chunking policy and must balance the load >= 1.3x better (projected
    # makespan on 4 cores; see crates/bench/src/bin/skew_smoke.rs).
    gate_step cargo run --release -q -p mnemonic-bench --bin skew_smoke
    # Shared-ingest smoke check: a 4-query session must beat 4 sequential
    # independent engines in total wall-clock on the multi-query workload
    # and report identical per-query embedding counts (see
    # crates/bench/src/bin/multi_query_gate.rs).
    gate_step cargo run --release -q -p mnemonic-bench --bin multi_query_gate
    # Query-sharding smoke check: a 4-shard / 8-query sharded session must
    # report per-query embedding counts identical to an unsharded session,
    # project a >= 1.3x better 4-core makespan, and not regress wall-clock
    # (projection only: thread speedups are unmeasurable on a 1-core CI box;
    # see crates/bench/src/bin/shard_gate.rs).
    gate_step cargo run --release -q -p mnemonic-bench --bin shard_gate
    # Hot-path smoke check: the allocation-free dense ingest path must beat
    # the retained pre-optimisation baseline path by >= 1.4x in batched
    # ingest wall-clock, with identical embedding counts — the one gate that
    # measures a real single-thread wall-clock win on this box (see
    # crates/bench/src/bin/hot_path_gate.rs).
    gate_step cargo run --release -q -p mnemonic-bench --bin hot_path_gate
    # Rebalance smoke check: starting from an adversarial static placement
    # that stacks both heavy queries on one shard, the weight-aware
    # scheduler must auto-migrate to a placement with >= 1.25x better
    # projected makespan while keeping per-query embedding counts identical
    # to an unsharded oracle (see crates/bench/src/bin/rebalance_gate.rs).
    gate_step cargo run --release -q -p mnemonic-bench --bin rebalance_gate
    # Serve smoke check: the pipelined ingest schedule (lanes stream through
    # the shared batch log with no per-batch barrier) must project a
    # >= 1.15x better makespan than the synchronous broadcast on a
    # label-phased skewed workload, with per-query embedding counts
    # identical to an unsharded oracle and identical batch boundaries (see
    # crates/bench/src/bin/serve_gate.rs).
    gate_step cargo run --release -q -p mnemonic-bench --bin serve_gate
    # Paging smoke check: a sliding-window replay whose compressed spill
    # footprint is >= 10x the page-cache budget must stay embedding-exact
    # vs an in-memory session, keep resident pages within the configured
    # budget, absorb zero I/O errors, and compress >= 1.3x over the flat
    # record encoding (see crates/bench/src/bin/paging_gate.rs).
    gate_step cargo run --release -q -p mnemonic-bench --bin paging_gate
    # Recovery smoke check: a seeded torn-write crash must recover an exact
    # reported prefix of the oracle record stream, a forced mid-batch lane
    # panic under a DegradePolicy must finish the pipelined run with counts
    # identical to an unfaulted oracle, and BlockTimeout overflow must land
    # in the shed tier only (zero under the lossless Block policy; see
    # crates/bench/src/bin/recovery_gate.rs).
    gate_step cargo run --release -q -p mnemonic-bench --bin recovery_gate
fi

step env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

if [ -n "$gate_ratios" ]; then
    printf '\nperf summary: %s\n' "$gate_ratios"
fi
printf 'ci.sh: all checks passed\n'
