#!/usr/bin/env bash
# Tier-1 CI gate for the Mnemonic workspace. Run from the repo root.
#
#   ./ci.sh         # full gate: fmt, clippy, release build, tests, bench compile, docs
#   ./ci.sh quick   # skip the release build and bench compile (inner dev loop)
#
# Every step must pass for the script to exit 0.

set -euo pipefail
cd "$(dirname "$0")"

quick="${1:-}"

step() {
    printf '\n==> %s\n' "$*"
    "$@"
}

step cargo fmt --all --check

step cargo clippy --workspace --all-targets -- -D warnings

if [ "$quick" != "quick" ]; then
    step cargo build --release
fi

step cargo test -q --workspace

if [ "$quick" != "quick" ]; then
    step cargo bench --workspace --no-run
    # Skew-balancing smoke check: on a skewed enumeration workload the
    # work-stealing pool must not regress wall-clock vs the legacy static
    # chunking policy and must balance the load >= 1.3x better (projected
    # makespan on 4 cores; see crates/bench/src/bin/skew_smoke.rs).
    step cargo run --release -q -p mnemonic-bench --bin skew_smoke
    # Shared-ingest smoke check: a 4-query session must beat 4 sequential
    # independent engines in total wall-clock on the multi-query workload
    # and report identical per-query embedding counts (see
    # crates/bench/src/bin/multi_query_gate.rs).
    step cargo run --release -q -p mnemonic-bench --bin multi_query_gate
    # Query-sharding smoke check: a 4-shard / 8-query sharded session must
    # report per-query embedding counts identical to an unsharded session,
    # project a >= 1.3x better 4-core makespan, and not regress wall-clock
    # (projection only: thread speedups are unmeasurable on a 1-core CI box;
    # see crates/bench/src/bin/shard_gate.rs).
    step cargo run --release -q -p mnemonic-bench --bin shard_gate
fi

step env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

printf '\nci.sh: all checks passed\n'
