//! Offline shim for `criterion`: the [`criterion_group!`]/[`criterion_main!`]
//! macros, benchmark groups and a timed [`Bencher::iter`].
//!
//! Each benchmark is warmed up for the configured warm-up time, then run for
//! `sample_size` samples (each sample iterates until ~1/sample of the
//! measurement time has elapsed), and a single line with min / median / max
//! time per iteration is printed. There are no HTML reports, no outlier
//! analysis, and no saved baselines — enough to compare orders of magnitude
//! and to keep `cargo bench` runnable offline.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for a parameterised benchmark — `criterion::BenchmarkId`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Types accepted as benchmark identifiers by `bench_function`.
pub trait IntoBenchmarkId {
    /// Convert into the printable benchmark id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Bencher<'_> {
    /// Run `routine` repeatedly, recording wall-clock time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent, measuring the
        // rough cost of one iteration as we go.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || iters == 0 {
            hint::black_box(routine());
            iters += 1;
        }
        let per_iter = warm_start.elapsed() / iters.max(1) as u32;

        // Size each sample so the whole measurement fits the budget.
        let budget = self.measurement_time / self.sample_size.max(1) as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1_000
        } else {
            (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u32
        };

        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                hint::black_box(routine());
            }
            self.samples.push(t0.elapsed() / iters_per_sample);
        }
    }
}

/// The first positional CLI argument, used as a substring filter on full
/// benchmark names — the `cargo bench -- <filter>` convention.
fn filter_arg() -> Option<&'static str> {
    static FILTER: std::sync::OnceLock<Option<String>> = std::sync::OnceLock::new();
    FILTER
        .get_or_init(|| std::env::args().skip(1).find(|a| !a.starts_with('-')))
        .as_deref()
}

fn full_name(group: &str, id: &str) -> String {
    if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    }
}

fn report(group: &str, id: &str, samples: &mut [Duration]) {
    samples.sort_unstable();
    let (min, med, max) = (
        samples.first().copied().unwrap_or_default(),
        samples.get(samples.len() / 2).copied().unwrap_or_default(),
        samples.last().copied().unwrap_or_default(),
    );
    let name = full_name(group, id);
    println!(
        "{name:<40} time: [{min:>10.3?} {med:>10.3?} {max:>10.3?}]  ({} samples)",
        samples.len()
    );
}

/// Shared group/benchmark settings.
#[derive(Clone)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// Throughput annotation — accepted and ignored by the shim's reporter.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named set of related benchmarks — `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n;
        self
    }

    /// Wall-clock budget for the measurement phase.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Wall-clock budget for the warm-up phase.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Record the per-iteration throughput (ignored by the shim's reporter).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into_benchmark_id();
        if let Some(filter) = filter_arg() {
            if !full_name(&self.name, &id).contains(filter) {
                return self;
            }
        }
        let mut samples = Vec::with_capacity(self.settings.sample_size);
        let mut bencher = Bencher {
            samples: &mut samples,
            warm_up_time: self.settings.warm_up_time,
            measurement_time: self.settings.measurement_time,
            sample_size: self.settings.sample_size,
        };
        f(&mut bencher);
        report(&self.name, &id, &mut samples);
        self
    }

    /// Run one parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

/// Benchmark harness entry point — `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.settings.clone();
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            settings,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let settings = self.settings.clone();
        let mut group = BenchmarkGroup {
            _criterion: self,
            name: String::new(),
            settings,
        };
        group.bench_function(id, f);
        self
    }

    /// Hook for CLI-argument handling; the shim accepts and ignores them
    /// (so `cargo bench -- <filter>` does not error out).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Final summary hook; a no-op in the shim.
    pub fn final_summary(&mut self) {}
}

/// Bundle benchmark functions into a group runner, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate a `main` that runs the given [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut runs = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(runs > 5, "routine should have run at least once per sample");
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).into_benchmark_id(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).into_benchmark_id(), "8");
    }
}
