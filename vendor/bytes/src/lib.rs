//! Offline shim for the `bytes` crate: the [`Buf`]/[`BufMut`] little-endian
//! accessors and the [`Bytes`]/[`BytesMut`] containers used by the edge log.
//! `Bytes` is a plain owned buffer — no reference-counted slicing — which is
//! all the append-only log needs.

/// Read-side cursor operations over a byte source.
pub trait Buf {
    /// Bytes remaining to be read.
    fn remaining(&self) -> usize;

    /// Consume and return the next little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;

    /// Consume and return the next little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Consume and return the next little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u16_le(&mut self) -> u16 {
        let (head, rest) = self.split_at(2);
        *self = rest;
        u16::from_le_bytes(head.try_into().unwrap())
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_le_bytes(head.try_into().unwrap())
    }

    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        u64::from_le_bytes(head.try_into().unwrap())
    }
}

/// Write-side append operations over a growable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Growable owned byte buffer mirroring `bytes::BytesMut`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut(Vec::with_capacity(capacity))
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Immutable owned byte buffer mirroring `bytes::Bytes`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut buf = BytesMut::with_capacity(14);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u16_le(0x1234);
        buf.put_u64_le(u64::MAX - 1);
        assert_eq!(buf.len(), 14);
        let mut cursor: &[u8] = &buf;
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u16_le(), 0x1234);
        assert_eq!(cursor.get_u64_le(), u64::MAX - 1);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn bytes_from_vec_derefs_to_slice() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        assert_eq!(b.len(), 4);
        assert_eq!(b.chunks_exact(2).count(), 2);
    }
}
