//! Offline shim for `proptest`: enough of the strategy combinators and the
//! [`proptest!`] macro to run the workspace's property tests as plain
//! randomised tests.
//!
//! Differences from the real crate, in decreasing order of importance:
//!
//! * **no shrinking** — a failing case is reported with its generated inputs
//!   (via the panic message of the failing `prop_assert!`) but not minimised;
//! * seeds are derived deterministically from the test name, so runs are
//!   reproducible but there is no failure persistence file;
//! * `prop_assert!`/`prop_assert_eq!` panic immediately instead of returning
//!   `TestCaseError`.

use std::ops::Range;

pub use rand::rngs::StdRng;
use rand::Rng;

/// Runner configuration: the `with_cases` subset of `ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Derive a deterministic per-test seed from the test's name (FNV-1a).
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A recipe for generating random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value the strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy; see [`any`].
pub trait Arbitrary: Sized {
    /// Produce one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen_range(0u32..2) == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty => $max:expr),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen_range(0..$max)
            }
        }
    )*};
}

impl_arbitrary_uint!(u16 => u16::MAX, u32 => u32::MAX, u64 => u64::MAX, usize => usize::MAX);

/// Strategy producing arbitrary values of `A` — `proptest::arbitrary::any`.
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(std::marker::PhantomData)
}

/// The strategy type returned by [`any`].
pub struct AnyStrategy<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;
    fn generate(&self, rng: &mut StdRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies — `proptest::collection`.
pub mod collection {
    use super::{Range, StdRng, Strategy};
    use rand::Rng;

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The strategy type returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Assert a condition inside a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...)` body is run
/// [`ProptestConfig::cases`] times against freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let strategies = ($($strategy,)*);
            let mut rng = <$crate::StdRng as $crate::prelude::SeedableRng>::seed_from_u64(
                $crate::seed_for(stringify!($name)),
            );
            for case in 0..config.cases {
                #[allow(non_snake_case, unused_variables, unused_parens)]
                let ($($arg,)*) = $crate::Strategy::generate(&strategies, &mut rng);
                let inputs = format!("{:?}", ($(&$arg),*));
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $body));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest shim: case {case}/{} of `{}` failed with inputs {inputs}",
                        config.cases,
                        stringify!($name),
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
    pub use rand::SeedableRng;

    /// Alias of the crate root, so `prop::collection::vec(...)` resolves.
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_values_respect_ranges(
            xs in prop::collection::vec((any::<bool>(), 0u32..8, 0u16..2), 1..60),
            n in 2usize..7,
        ) {
            prop_assert!((1..60).contains(&xs.len()));
            prop_assert!((2..7).contains(&n));
            for (_, a, b) in xs {
                prop_assert!(a < 8);
                prop_assert!(b < 2);
            }
        }
    }

    #[test]
    fn seeds_differ_by_name_and_are_stable() {
        assert_eq!(crate::seed_for("foo"), crate::seed_for("foo"));
        assert_ne!(crate::seed_for("foo"), crate::seed_for("bar"));
    }
}
