//! Offline shim for `serde` with the `derive` feature.
//!
//! Exposes the two trait names and the matching derive macros so that
//! `use serde::{Serialize, Deserialize};` plus `#[derive(Serialize,
//! Deserialize)]` compile unchanged. The traits are deliberately empty: no
//! code in this workspace serialises anything yet, and the no-op derives
//! (see [`serde_derive`]) implement nothing. Replace with crates.io `serde`
//! for real (de)serialisation.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
