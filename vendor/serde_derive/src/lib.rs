//! Offline shim for the `serde_derive` proc-macro crate.
//!
//! The derives expand to nothing: the workspace only uses
//! `#[derive(Serialize, Deserialize)]` as forward-looking annotations and
//! never requires a `T: Serialize` bound, so empty expansions keep every
//! annotated type compiling without pulling in the real serde machinery.
//! Swap this crate for crates.io `serde_derive` to get real impls.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
