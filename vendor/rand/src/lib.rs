//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! Provides [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng`] and
//! [`rngs::StdRng`] — the surface the datagen crate and the differential
//! tests use. The generator is SplitMix64: deterministic per seed, passes
//! basic equidistribution smoke tests, and is emphatically **not** the same
//! stream as the real `StdRng` (ChaCha12), so seeds produce different data
//! than they would with crates.io `rand`. Everything downstream treats the
//! stream as opaque, so only determinism matters.

use std::ops::Range;

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight
                // modulo bias of the plain fallback would be fine too for
                // test workloads, but this is just as cheap.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                if (m as u64) < span {
                    let t = span.wrapping_neg() % span;
                    while (m as u64) < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                    }
                }
                low.wrapping_add((m >> 64) as u64 as Self)
            }
        }
    )*};
}

impl_sample_uniform!(u16, u32, u64, usize);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Sample a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits, as the real rand does.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u32> = (0..32).map(|_| a.gen_range(0u32..1000)).collect();
        let ys: Vec<u32> = (0..32).map(|_| b.gen_range(0u32..1000)).collect();
        let zs: Vec<u32> = (0..32).map(|_| c.gen_range(0u32..1000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u16..2);
            assert!(w < 2);
        }
    }

    #[test]
    fn gen_bool_extremes_and_rough_balance() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!(
            (4_000..6_000).contains(&heads),
            "suspicious balance: {heads}"
        );
    }
}
