//! Work-stealing scheduling primitives: a global [`Injector`] queue and
//! per-worker [`WorkerQueue`] deques.
//!
//! These are the building blocks of the shim's thread pool, kept generic and
//! public so the workspace's property tests can hammer them directly: the
//! pool-level invariant ("every task pushed is executed exactly once, no
//! matter how the thieves interleave") reduces to the exactly-once transfer
//! discipline of these two queues.
//!
//! The implementation is intentionally lock-based (a `Mutex<VecDeque>` per
//! queue) rather than a lock-free Chase-Lev deque: the policy — FIFO global
//! injection, LIFO local execution, steal-half from the front of a victim —
//! is what balances skewed workloads, and a coarse lock keeps the shim small
//! and obviously correct. Swapping in `crossbeam-deque` when a registry is
//! available changes nothing above this module.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Lock the mutex, ignoring poisoning: no user code ever runs while a queue
/// lock is held, so a poisoned lock still guards consistent data.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The global FIFO injection queue: external callers push batches of tasks
/// here, workers move shares of it into their local deques.
#[derive(Debug, Default)]
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
    /// Cached length so idle workers can probe for work without locking.
    len: AtomicUsize,
}

impl<T> Injector<T> {
    /// Create an empty injector.
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
        }
    }

    /// Push a single task at the back.
    pub fn push(&self, task: T) {
        let mut q = lock(&self.queue);
        q.push_back(task);
        self.len.store(q.len(), Ordering::Release);
    }

    /// Push a batch of tasks at the back under one lock acquisition.
    pub fn push_batch(&self, tasks: impl IntoIterator<Item = T>) {
        let mut q = lock(&self.queue);
        q.extend(tasks);
        self.len.store(q.len(), Ordering::Release);
    }

    /// Pop one task from the front (FIFO).
    pub fn pop(&self) -> Option<T> {
        let mut q = lock(&self.queue);
        let task = q.pop_front();
        self.len.store(q.len(), Ordering::Release);
        task
    }

    /// Pop a *share* of the queue from the front: `ceil(len / divisor)` tasks
    /// (at least one when the queue is non-empty). A worker pulling work out
    /// of the injector takes its fair share in one lock acquisition and keeps
    /// the rest for its peers.
    pub fn pop_share(&self, divisor: usize) -> Vec<T> {
        let mut q = lock(&self.queue);
        let n = q.len();
        if n == 0 {
            return Vec::new();
        }
        let take = n.div_ceil(divisor.max(1)).min(n);
        let share: Vec<T> = q.drain(..take).collect();
        self.len.store(q.len(), Ordering::Release);
        share
    }

    /// Number of queued tasks (approximate outside the lock).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether the queue is (approximately) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A per-worker task deque: the owner pushes and pops at the back (LIFO, for
/// locality), thieves steal half of the queue from the front (the oldest —
/// and, under divide-and-conquer splitting, largest — tasks).
#[derive(Debug, Default)]
pub struct WorkerQueue<T> {
    queue: Mutex<VecDeque<T>>,
    /// Cached length so thieves can pick a victim without locking it.
    len: AtomicUsize,
}

impl<T> WorkerQueue<T> {
    /// Create an empty worker deque.
    pub fn new() -> Self {
        WorkerQueue {
            queue: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
        }
    }

    /// Owner: push a task at the back.
    pub fn push(&self, task: T) {
        let mut q = lock(&self.queue);
        q.push_back(task);
        self.len.store(q.len(), Ordering::Release);
    }

    /// Owner: push a batch of tasks at the back, preserving their order.
    pub fn extend(&self, tasks: impl IntoIterator<Item = T>) {
        let mut q = lock(&self.queue);
        q.extend(tasks);
        self.len.store(q.len(), Ordering::Release);
    }

    /// Owner: pop the most recently pushed task (LIFO).
    pub fn pop(&self) -> Option<T> {
        let mut q = lock(&self.queue);
        let task = q.pop_back();
        self.len.store(q.len(), Ordering::Release);
        task
    }

    /// Thief: steal *half* of `victim`'s queue (`ceil(len / 2)`, from the
    /// front). The first stolen task is returned for immediate execution, the
    /// remainder is appended to `self`. Returns `None` when the victim was
    /// empty.
    ///
    /// The victim's lock is released before `self` is locked, so two workers
    /// stealing from each other concurrently cannot deadlock.
    pub fn steal_half_from(&self, victim: &WorkerQueue<T>) -> Option<T> {
        let mut stolen = {
            let mut v = lock(&victim.queue);
            let n = v.len();
            if n == 0 {
                return None;
            }
            let take = n.div_ceil(2);
            let stolen: Vec<T> = v.drain(..take).collect();
            victim.len.store(v.len(), Ordering::Release);
            stolen
        };
        let first = stolen.remove(0);
        if !stolen.is_empty() {
            self.extend(stolen);
        }
        Some(first)
    }

    /// Number of queued tasks (approximate outside the lock).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether the deque is (approximately) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_is_fifo_and_tracks_len() {
        let inj = Injector::new();
        inj.push(1);
        inj.push_batch([2, 3, 4]);
        assert_eq!(inj.len(), 4);
        assert_eq!(inj.pop(), Some(1));
        assert_eq!(inj.pop_share(2), vec![2, 3]);
        assert_eq!(inj.len(), 1);
        assert_eq!(inj.pop(), Some(4));
        assert!(inj.is_empty());
        assert!(inj.pop_share(4).is_empty());
    }

    #[test]
    fn worker_queue_is_lifo_for_owner() {
        let q = WorkerQueue::new();
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn steal_takes_the_front_half() {
        let victim = WorkerQueue::new();
        let thief = WorkerQueue::new();
        victim.extend([1, 2, 3, 4, 5]);
        // ceil(5/2) = 3 stolen: first returned, 2 and 3 land in the thief.
        assert_eq!(thief.steal_half_from(&victim), Some(1));
        assert_eq!(thief.len(), 2);
        assert_eq!(victim.len(), 2);
        // Thief keeps its own order (owner pops LIFO: 3 then 2).
        assert_eq!(thief.pop(), Some(3));
        assert_eq!(thief.pop(), Some(2));
        // Victim keeps its back half.
        assert_eq!(victim.pop(), Some(5));
        assert_eq!(victim.pop(), Some(4));
    }

    #[test]
    fn steal_from_empty_victim() {
        let victim: WorkerQueue<u32> = WorkerQueue::new();
        let thief = WorkerQueue::new();
        assert_eq!(thief.steal_half_from(&victim), None);
    }
}
