//! Offline shim for `rayon` (the subset the Mnemonic engine uses), built on a
//! real work-stealing pool.
//!
//! [`ThreadPool`] owns *persistent* worker threads fed through the scheduler
//! of [`sched`]: callers push tasks into a global [`sched::Injector`], each
//! worker moves a share of it into its own [`sched::WorkerQueue`], executes
//! locally in LIFO order and — when it runs dry — steals half of a victim's
//! deque. Slice [`prelude::IntoParallelRefIterator::par_iter`] + `for_each`
//! feeds fine-grained chunks into that machinery dynamically instead of
//! pre-splitting one chunk per thread, so very skewed work units rebalance
//! onto idle workers exactly like under real rayon. [`spawn`], [`scope`] and
//! [`join`] are provided on the same runtime.
//!
//! [`ThreadPool::install`] runs the closure on the *calling* thread with the
//! pool's registry and width published in thread-locals (real rayon migrates
//! the closure onto a worker; the shim keeps the caller as the coordinator,
//! which preserves the same `Send`/`Sync` obligations — task closures really
//! do cross threads — with much less machinery). The pre-pool static
//! splitting survives as [`iter::SlicePar::for_each_chunked`], kept as the
//! load-balancing baseline for benches and the CI skew smoke check.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

pub mod sched;

use sched::{Injector, WorkerQueue};

/// A unit of work owned by the pool. Non-`'static` borrows (parallel
/// iterators, scope spawns) are transmuted to `'static` at creation; this is
/// sound because the submitting call blocks until its completion latch trips,
/// which happens only after every one of its tasks has run.
type Task = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// Degree of parallelism installed by the innermost `ThreadPool::install`.
    static CURRENT_WIDTH: Cell<usize> = const { Cell::new(0) };
    /// Registry installed by the innermost `ThreadPool::install`.
    static CURRENT_REGISTRY: RefCell<Option<Arc<Registry>>> = const { RefCell::new(None) };
    /// Set on pool worker threads: (owning registry, worker index).
    static WORKER: RefCell<Option<(Arc<Registry>, usize)>> = const { RefCell::new(None) };
}

fn default_width() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The degree of parallelism in effect on the calling thread.
pub fn current_num_threads() -> usize {
    let width = CURRENT_WIDTH.with(|w| w.get());
    if width == 0 {
        default_width()
    } else {
        width
    }
}

fn current_registry() -> Option<Arc<Registry>> {
    CURRENT_REGISTRY.with(|r| r.borrow().clone())
}

/// The process-wide fallback registry used by [`spawn`] and parallel
/// iterators outside any [`ThreadPool::install`]. Created lazily with one
/// worker per logical CPU; its threads are detached and live for the process.
fn global_registry() -> Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL
        .get_or_init(|| {
            let registry = Registry::new(default_width().max(1));
            for index in 0..registry.width {
                let reg = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("rayon-global-{index}"))
                    .spawn(move || worker_loop(reg, index))
                    .expect("failed to spawn global pool worker");
            }
            registry
        })
        .clone()
}

// ---------------------------------------------------------------------------
// Registry: the shared state of one pool.
// ---------------------------------------------------------------------------

/// Shared state of a pool: the injector, one deque per worker, and the
/// sleep/wake machinery.
struct Registry {
    injector: Injector<Task>,
    workers: Vec<WorkerQueue<Task>>,
    sleep: Mutex<()>,
    wakeup: Condvar,
    shutdown: AtomicBool,
    width: usize,
}

impl Registry {
    fn new(width: usize) -> Arc<Self> {
        Arc::new(Registry {
            injector: Injector::new(),
            workers: (0..width).map(|_| WorkerQueue::new()).collect(),
            sleep: Mutex::new(()),
            wakeup: Condvar::new(),
            shutdown: AtomicBool::new(false),
            width,
        })
    }

    /// Whether any queue (approximately) holds a task.
    fn has_visible_work(&self) -> bool {
        !self.injector.is_empty() || self.workers.iter().any(|w| !w.is_empty())
    }

    /// Wake every sleeping worker. Taking the sleep lock orders the wakeup
    /// after any push observed by a worker that re-checks under the lock, so
    /// notifications cannot be lost.
    fn notify_all(&self) {
        let _guard = self.sleep.lock().unwrap_or_else(|e| e.into_inner());
        self.wakeup.notify_all();
    }

    /// Submit a batch of tasks through the injector and wake the workers.
    fn inject_batch(&self, tasks: Vec<Task>) {
        self.injector.push_batch(tasks);
        self.notify_all();
    }

    /// Submit one task and wake the workers.
    fn inject(&self, task: Task) {
        self.injector.push(task);
        self.notify_all();
    }

    /// Find a task for worker `index`: local deque first (LIFO), then a share
    /// of the injector, then steal half of a victim's deque.
    fn find_task(&self, index: usize) -> Option<Task> {
        let local = &self.workers[index];
        if let Some(task) = local.pop() {
            return Some(task);
        }
        let mut share = self.injector.pop_share(self.width);
        if !share.is_empty() {
            let first = share.remove(0);
            if !share.is_empty() {
                local.extend(share);
                // The surplus we just parked locally is stealable.
                self.notify_all();
            }
            return Some(first);
        }
        for offset in 1..self.width {
            let victim = (index + offset) % self.width;
            if self.workers[victim].is_empty() {
                continue;
            }
            if let Some(task) = local.steal_half_from(&self.workers[victim]) {
                if !local.is_empty() {
                    self.notify_all();
                }
                return Some(task);
            }
        }
        None
    }

    /// Block until `latch` trips. A worker of this registry keeps executing
    /// tasks while it waits (so nested parallel calls cannot deadlock); any
    /// other thread sleeps on the latch.
    fn wait_on(&self, latch: &Latch) {
        let worker_index = WORKER.with(|w| {
            w.borrow()
                .as_ref()
                .filter(|(reg, _)| std::ptr::eq(Arc::as_ptr(reg), self as *const _))
                .map(|&(_, index)| index)
        });
        match worker_index {
            Some(index) => {
                while !latch.probe() {
                    match self.find_task(index) {
                        Some(task) => task(),
                        None => latch.wait_briefly(),
                    }
                }
            }
            None => latch.wait(),
        }
    }
}

/// One pool worker: drain local work, pull shares from the injector, steal
/// from peers, and sleep (with a timeout backstop) when the pool is idle.
/// On shutdown the worker drains every reachable task before exiting, so
/// fire-and-forget [`spawn`]s still run.
fn worker_loop(registry: Arc<Registry>, index: usize) {
    CURRENT_WIDTH.with(|w| w.set(registry.width));
    CURRENT_REGISTRY.with(|r| *r.borrow_mut() = Some(Arc::clone(&registry)));
    WORKER.with(|w| *w.borrow_mut() = Some((Arc::clone(&registry), index)));
    loop {
        if let Some(task) = registry.find_task(index) {
            task();
            continue;
        }
        if registry.shutdown.load(Ordering::Acquire) {
            if registry.has_visible_work() {
                continue;
            }
            return;
        }
        let guard = registry.sleep.lock().unwrap_or_else(|e| e.into_inner());
        if registry.has_visible_work() || registry.shutdown.load(Ordering::Acquire) {
            continue;
        }
        // The timeout is a backstop only; notify_all under the same lock is
        // the primary wake path.
        let _ = registry
            .wakeup
            .wait_timeout(guard, Duration::from_millis(10));
    }
}

// ---------------------------------------------------------------------------
// Latch + shared job state.
// ---------------------------------------------------------------------------

/// A one-shot completion latch.
struct Latch {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    fn new() -> Self {
        Latch {
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn set(&self) {
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        *done = true;
        self.cv.notify_all();
    }

    fn probe(&self) -> bool {
        *self.done.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wait(&self) {
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        while !*done {
            done = self.cv.wait(done).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Sleep until the latch trips or a short timeout elapses; used by
    /// workers that interleave waiting with task execution.
    fn wait_briefly(&self) {
        let done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        if !*done {
            let _ = self.cv.wait_timeout(done, Duration::from_micros(200));
        }
    }
}

/// Completion accounting shared by every task of one parallel call: an
/// outstanding-task counter, the latch tripped by the last task, and the
/// first captured panic (re-thrown at the blocked submitter).
struct JobState {
    pending: AtomicUsize,
    latch: Latch,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl JobState {
    fn new(pending: usize) -> Self {
        JobState {
            pending: AtomicUsize::new(pending),
            latch: Latch::new(),
            panic: Mutex::new(None),
        }
    }

    fn add_one(&self) {
        self.pending.fetch_add(1, Ordering::AcqRel);
    }

    /// Record one finished task (optionally with its captured panic); the
    /// last task trips the latch.
    fn finish(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        if let Some(payload) = panic {
            let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
            slot.get_or_insert(payload);
        }
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.latch.set();
        }
    }

    /// Re-throw the first captured panic, if any.
    fn propagate_panic(&self) {
        let payload = self.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

/// Erase a non-`'static` task to the pool's `'static` task type. Callers must
/// guarantee the task runs (or is dropped) before the borrows it captures
/// expire — every submitter below blocks on its [`JobState`] latch, which
/// trips only after all of its tasks have executed.
unsafe fn erase_task<'a>(task: Box<dyn FnOnce() + Send + 'a>) -> Task {
    std::mem::transmute::<Box<dyn FnOnce() + Send + 'a>, Task>(task)
}

// ---------------------------------------------------------------------------
// ThreadPool and builder.
// ---------------------------------------------------------------------------

/// Error type of [`ThreadPoolBuilder::build`]; the shim never fails.
pub struct ThreadPoolBuildError(());

impl fmt::Debug for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ThreadPoolBuildError")
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
    thread_name: Option<Box<dyn FnMut(usize) -> String>>,
}

impl ThreadPoolBuilder {
    /// Start building a pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker count; `0` means one worker per logical CPU.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Name the pool's worker threads (`name(i)` for worker `i`).
    pub fn thread_name<F>(mut self, name: F) -> Self
    where
        F: FnMut(usize) -> String + 'static,
    {
        self.thread_name = Some(Box::new(name));
        self
    }

    /// Finish the build, spawning the persistent workers. Never fails in the
    /// shim.
    pub fn build(mut self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let width = if self.num_threads == 0 {
            default_width()
        } else {
            self.num_threads
        };
        let registry = Registry::new(width);
        let mut handles = Vec::with_capacity(width);
        for index in 0..width {
            let name = match self.thread_name.as_mut() {
                Some(f) => f(index),
                None => format!("rayon-worker-{index}"),
            };
            let reg = Arc::clone(&registry);
            let handle = std::thread::Builder::new()
                .name(name)
                .spawn(move || worker_loop(reg, index))
                .expect("failed to spawn pool worker");
            handles.push(handle);
        }
        Ok(ThreadPool { registry, handles })
    }
}

/// A work-stealing thread pool mirroring `rayon::ThreadPool`.
pub struct ThreadPool {
    registry: Arc<Registry>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Number of workers parallel operations inside this pool will use.
    pub fn current_num_threads(&self) -> usize {
        self.registry.width
    }

    /// Run `f` with this pool installed on the calling thread: parallel
    /// iterators, [`scope`] and [`spawn`] inside `f` dispatch onto this
    /// pool's workers. The previous installation is restored even if `f`
    /// panics, so a caught panic (e.g. under `catch_unwind` in a test
    /// harness) cannot leak this pool into unrelated work on the same thread.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        struct Restore(usize, Option<Arc<Registry>>);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT_WIDTH.with(|w| w.set(self.0));
                CURRENT_REGISTRY.with(|r| *r.borrow_mut() = self.1.take());
            }
        }
        let prev_width = CURRENT_WIDTH.with(|w| w.replace(self.registry.width));
        let prev_registry =
            CURRENT_REGISTRY.with(|r| r.borrow_mut().replace(Arc::clone(&self.registry)));
        let _restore = Restore(prev_width, prev_registry);
        f()
    }

    /// Create a [`scope`] whose spawns run on this pool.
    pub fn scope<'scope, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'scope>) -> R + Send,
        R: Send,
    {
        self.install(move || scope(f))
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.shutdown.store(true, Ordering::Release);
        self.registry.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------------
// spawn / scope / join.
// ---------------------------------------------------------------------------

/// Fire-and-forget: run `f` asynchronously on the installed pool (or the
/// process-global pool outside any [`ThreadPool::install`]). A panic in `f`
/// is caught and discarded, mirroring rayon's detached-spawn behaviour
/// closely enough for the shim.
pub fn spawn<F>(f: F)
where
    F: FnOnce() + Send + 'static,
{
    let registry = current_registry().unwrap_or_else(global_registry);
    registry.inject(Box::new(move || {
        let _ = catch_unwind(AssertUnwindSafe(f));
    }));
}

/// A structured-concurrency scope: tasks spawned on it may borrow anything
/// that outlives `'scope`, and [`scope`] does not return until every spawned
/// task has finished.
pub struct Scope<'scope> {
    registry: Option<Arc<Registry>>,
    /// Pending count starts at 1 (the scope body); each spawn adds one.
    state: JobState,
    _marker: std::marker::PhantomData<fn(&'scope ()) -> &'scope ()>,
}

/// A pointer to a [`Scope`] that may ride inside a task to another thread.
/// Safety: the scope outlives every one of its tasks (the creator blocks on
/// the scope latch) and its shared state is `Sync`.
struct ScopePtr<'scope>(*const Scope<'scope>);
unsafe impl Send for ScopePtr<'_> {}

impl<'scope> ScopePtr<'scope> {
    /// Accessor (rather than a field read) so closures capture the whole
    /// `Send` wrapper, not the raw pointer inside it.
    fn get(&self) -> *const Scope<'scope> {
        self.0
    }
}

impl<'scope> Scope<'scope> {
    /// Spawn a task on the scope. Without a pool installed the task runs
    /// inline immediately.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        let Some(registry) = &self.registry else {
            f(self);
            return;
        };
        self.state.add_one();
        let scope_ptr = ScopePtr(self as *const Scope<'scope>);
        let task = move || {
            // Safety: see `ScopePtr`.
            let scope = unsafe { &*scope_ptr.get() };
            let result = catch_unwind(AssertUnwindSafe(|| f(scope)));
            scope.state.finish(result.err());
        };
        let boxed: Box<dyn FnOnce() + Send + '_> = Box::new(task);
        // Safety: `scope()` blocks on the scope latch before returning.
        registry.inject(unsafe { erase_task(boxed) });
    }
}

/// Run `f` with a [`Scope`] bound to the installed pool and wait for every
/// spawned task to finish; panics from the body or any task are propagated.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    let s = Scope {
        registry: current_registry(),
        state: JobState::new(1),
        _marker: std::marker::PhantomData,
    };
    let body = catch_unwind(AssertUnwindSafe(|| f(&s)));
    let (out, body_panic) = match body {
        Ok(value) => (Some(value), None),
        Err(payload) => (None, Some(payload)),
    };
    // Retire the body's pending token, then wait for the spawned tasks.
    s.state.finish(body_panic);
    if let Some(registry) = &s.registry {
        registry.wait_on(&s.state.latch);
    } else {
        debug_assert!(s.state.latch.probe(), "inline scope left pending tasks");
    }
    s.state.propagate_panic();
    out.expect("scope body panicked without propagating")
}

/// Run `a` and `b`, potentially in parallel, and return both results. `b` is
/// offered to the pool while the caller runs `a` inline.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut rb = None;
    let ra = scope(|s| {
        s.spawn(|_| rb = Some(b()));
        a()
    });
    (ra, rb.expect("join: second closure did not run"))
}

/// Submit `len` items as dynamically balanced tasks of `run_chunk(start, end)`
/// and block until all complete. `run_chunk` must be safe to call from any
/// pool thread; panics are captured and re-thrown here.
fn parallel_chunks<F>(registry: &Arc<Registry>, len: usize, width: usize, run_chunk: F)
where
    F: Fn(usize, usize) + Sync,
{
    // Fine-grained dynamic feeding: aim for several tasks per worker so a
    // skewed chunk can be compensated by idle workers stealing the rest.
    let tasks = (width.max(1) * 8).min(len).max(1);
    let chunk = len.div_ceil(tasks);
    let task_count = len.div_ceil(chunk);
    let state = JobState::new(task_count);
    let mut batch: Vec<Task> = Vec::with_capacity(task_count);
    let run_chunk = &run_chunk;
    let state_ref = &state;
    let mut start = 0;
    while start < len {
        let end = (start + chunk).min(len);
        let task = move || {
            let result = catch_unwind(AssertUnwindSafe(|| run_chunk(start, end)));
            state_ref.finish(result.err());
        };
        let boxed: Box<dyn FnOnce() + Send + '_> = Box::new(task);
        // Safety: this function blocks on `state.latch` before returning, so
        // `run_chunk` and `state` outlive every task.
        batch.push(unsafe { erase_task(boxed) });
        start = end;
    }
    registry.inject_batch(batch);
    registry.wait_on(&state.latch);
    state.propagate_panic();
}

/// Parallel iteration traits and adapters.
pub mod iter {
    use super::{global_registry, parallel_chunks};

    /// A pending parallel iteration over the elements of a slice.
    pub struct SlicePar<'a, T> {
        slice: &'a [T],
    }

    impl<'a, T: Sync> SlicePar<'a, T> {
        /// Apply `op` to every element. Elements are fed to the installed
        /// pool as fine-grained chunk tasks that idle workers steal, so
        /// skewed per-element costs rebalance dynamically.
        pub fn for_each<F>(self, op: F)
        where
            F: Fn(&'a T) + Sync + Send,
        {
            let len = self.slice.len();
            let width = super::current_num_threads().clamp(1, len.max(1));
            if width <= 1 || len <= 1 {
                self.slice.iter().for_each(op);
                return;
            }
            let registry = super::current_registry().unwrap_or_else(global_registry);
            let slice = self.slice;
            parallel_chunks(&registry, len, width.min(registry.width), |start, end| {
                slice[start..end].iter().for_each(&op);
            });
        }

        /// The pre-work-stealing scheduling policy: split the slice into one
        /// contiguous chunk per worker on `std::thread::scope` threads, with
        /// no rebalancing. Kept as the load-balancing baseline for the
        /// skewed-workload benchmarks and the CI skew smoke check.
        pub fn for_each_chunked<F>(self, op: F)
        where
            F: Fn(&'a T) + Sync + Send,
        {
            let width = super::current_num_threads().clamp(1, self.slice.len().max(1));
            if width <= 1 || self.slice.len() <= 1 {
                self.slice.iter().for_each(op);
                return;
            }
            let chunk = self.slice.len().div_ceil(width);
            std::thread::scope(|scope| {
                for part in self.slice.chunks(chunk) {
                    let op = &op;
                    scope.spawn(move || part.iter().for_each(op));
                }
            });
        }

        /// Sum the elements. Sequential: the workspace only folds tiny
        /// ranges, and `Sum` gives no parallel-friendly identity.
        pub fn sum<S>(self) -> S
        where
            S: std::iter::Sum<&'a T>,
        {
            self.slice.iter().sum()
        }
    }

    /// `.par_iter()` on borrowed collections (slices, `Vec`).
    pub trait IntoParallelRefIterator<'a> {
        /// Element type yielded by the iteration.
        type Item: 'a;
        /// Borrowing parallel iterator over the collection.
        fn par_iter(&'a self) -> SlicePar<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> SlicePar<'a, T> {
            SlicePar { slice: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> SlicePar<'a, T> {
            SlicePar { slice: self }
        }
    }

    /// A pending parallel iteration over fixed-size chunks of a slice.
    pub struct ChunksPar<'a, T> {
        slice: &'a [T],
        chunk_size: usize,
    }

    impl<'a, T: Sync> ChunksPar<'a, T> {
        /// Apply `op` to every chunk. Chunk boundaries are identical to
        /// `slice.chunks(chunk_size)`; chunks are fed to the installed pool
        /// as steal-able tasks.
        pub fn for_each<F>(self, op: F)
        where
            F: Fn(&'a [T]) + Sync + Send,
        {
            let chunk_size = self.chunk_size.max(1);
            let count = self.slice.len().div_ceil(chunk_size);
            let width = super::current_num_threads().clamp(1, count.max(1));
            if width <= 1 || count <= 1 {
                self.slice.chunks(chunk_size).for_each(op);
                return;
            }
            let registry = super::current_registry().unwrap_or_else(global_registry);
            let slice = self.slice;
            parallel_chunks(&registry, count, width.min(registry.width), |start, end| {
                for ci in start..end {
                    let lo = ci * chunk_size;
                    let hi = (lo + chunk_size).min(slice.len());
                    op(&slice[lo..hi]);
                }
            });
        }
    }

    /// `.par_chunks()` on slices (the subset of rayon's `ParallelSlice` the
    /// workspace uses).
    pub trait ParallelSlice<T: Sync> {
        /// Parallel iterator over `chunk_size`-sized chunks (last chunk may
        /// be shorter), matching `slice::chunks` boundaries.
        fn par_chunks(&self, chunk_size: usize) -> ChunksPar<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> ChunksPar<'_, T> {
            ChunksPar {
                slice: self,
                chunk_size,
            }
        }
    }

    /// A pending parallel iteration over an integer range.
    pub struct RangePar<I> {
        range: std::ops::Range<I>,
    }

    impl<I> RangePar<I>
    where
        std::ops::Range<I>: Iterator<Item = I>,
    {
        /// Sum the range. Sequential; see [`SlicePar::sum`].
        pub fn sum<S>(self) -> S
        where
            S: std::iter::Sum<I>,
        {
            self.range.sum()
        }

        /// Apply `op` to every element of the range. Sequential: the
        /// workspace only uses ranges for tiny folds; slice iteration is the
        /// parallel hot path.
        pub fn for_each<F>(self, op: F)
        where
            F: Fn(I) + Sync + Send,
        {
            self.range.for_each(op);
        }
    }

    /// `.into_par_iter()` on owned collections and ranges.
    pub trait IntoParallelIterator {
        /// Element type yielded by the iteration.
        type Item;
        /// The pending parallel iterator type.
        type Iter;
        /// Convert into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I> IntoParallelIterator for std::ops::Range<I>
    where
        std::ops::Range<I>: Iterator<Item = I>,
    {
        type Item = I;
        type Iter = RangePar<I>;
        fn into_par_iter(self) -> RangePar<I> {
            RangePar { range: self }
        }
    }
}

/// Glob-import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn install_scopes_width() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), default_width());
    }

    #[test]
    fn for_each_visits_every_element_once() {
        let data: Vec<usize> = (0..1000).collect();
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            data.par_iter().for_each(|&i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn for_each_chunked_visits_every_element_once() {
        let data: Vec<usize> = (0..1000).collect();
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            data.par_iter().for_each_chunked(|&i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_chunks_matches_sequential_chunk_boundaries() {
        let data: Vec<usize> = (0..1003).collect();
        let hits: Vec<AtomicUsize> = (0..1003).map(|_| AtomicUsize::new(0)).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            data.par_chunks(64).for_each(|chunk| {
                // Every chunk except possibly the last is exactly 64 long
                // and starts on a 64-aligned element.
                assert!(chunk.len() == 64 || chunk[0] + chunk.len() == 1003);
                assert_eq!(chunk[0] % 64, 0);
                for &i in chunk {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn for_each_actually_crosses_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let data: Vec<usize> = (0..16).collect();
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            data.par_iter().for_each(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
                // Yield the core so other workers get to pull tasks even on a
                // single-CPU machine.
                std::thread::sleep(std::time::Duration::from_millis(5));
            });
        });
        assert!(
            seen.lock().unwrap().len() > 1,
            "expected work on multiple threads"
        );
    }

    #[test]
    fn skewed_work_is_stolen_off_the_loaded_worker() {
        // One task is ~100x heavier than the rest. Under static chunking the
        // worker that owns the heavy chunk would also own every task behind
        // it; with work stealing the cheap tasks must spread to other
        // threads while the heavy one runs.
        use std::collections::HashMap;
        use std::sync::Mutex;
        let mut costs = vec![1u64; 64];
        costs[0] = 100;
        let by_thread: Mutex<HashMap<std::thread::ThreadId, u64>> = Mutex::new(HashMap::new());
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            costs.par_iter().for_each(|&c| {
                std::thread::sleep(std::time::Duration::from_micros(c * 100));
                *by_thread
                    .lock()
                    .unwrap()
                    .entry(std::thread::current().id())
                    .or_insert(0) += c;
            });
        });
        let by_thread = by_thread.lock().unwrap();
        let total: u64 = by_thread.values().sum();
        assert_eq!(total, 163);
        let max = by_thread.values().max().copied().unwrap_or(0);
        assert!(
            max < total,
            "expected the cheap tasks to run on other workers"
        );
    }

    #[test]
    fn install_restores_width_after_panic() {
        let pool = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| panic!("boom"));
        }));
        assert_eq!(
            current_num_threads(),
            default_width(),
            "pool width must not leak past a caught panic"
        );
    }

    #[test]
    fn for_each_propagates_task_panics() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let data: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                data.par_iter().for_each(|&i| {
                    if i == 33 {
                        panic!("task 33 exploded");
                    }
                });
            });
        }));
        assert!(result.is_err(), "panic inside a task must reach the caller");
    }

    #[test]
    fn scope_runs_every_spawn_with_borrows() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let counter = AtomicUsize::new(0);
        pool.install(|| {
            scope(|s| {
                for _ in 0..40 {
                    s.spawn(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn scope_supports_nested_spawns() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let counter = AtomicUsize::new(0);
        pool.install(|| {
            scope(|s| {
                for _ in 0..4 {
                    s.spawn(|s| {
                        counter.fetch_add(1, Ordering::Relaxed);
                        s.spawn(|_| {
                            counter.fetch_add(1, Ordering::Relaxed);
                        });
                    });
                }
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn scope_without_pool_runs_inline() {
        let counter = AtomicUsize::new(0);
        let out = scope(|s| {
            s.spawn(|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
            7
        });
        assert_eq!(out, 7);
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn join_returns_both_results() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let (a, b) = pool.install(|| join(|| 2 + 2, || "ok"));
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn spawn_runs_detached_tasks_before_pool_drop() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
            pool.install(|| {
                for _ in 0..16 {
                    let counter = Arc::clone(&counter);
                    spawn(move || {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            // Dropping the pool drains the queues before joining the workers.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn range_sum_matches_sequential() {
        let s: u64 = (0..1000u64).into_par_iter().sum();
        assert_eq!(s, 499_500);
    }

    #[test]
    fn nested_for_each_inside_worker_does_not_deadlock() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let counter = AtomicUsize::new(0);
        pool.install(|| {
            scope(|s| {
                s.spawn(|_| {
                    // This runs on a worker; the nested for_each must
                    // participate instead of waiting forever.
                    let inner: Vec<usize> = (0..64).collect();
                    inner.par_iter().for_each(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                });
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }
}
