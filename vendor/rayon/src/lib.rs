//! Offline shim for `rayon` (the subset the Mnemonic engine uses).
//!
//! [`ThreadPool`] carries a *degree of parallelism*, not a set of persistent
//! worker threads: [`ThreadPool::install`] publishes that degree in a
//! thread-local, and slice [`prelude::IntoParallelRefIterator::par_iter`] +
//! `for_each` split the slice into per-thread chunks executed on
//! `std::thread::scope` threads. This keeps the engine's `Send`/`Sync`
//! obligations identical to real rayon (closures really do cross threads)
//! while staying dependency-free; there is no work stealing, so very skewed
//! work units balance worse than under real rayon.

use std::cell::Cell;
use std::fmt;

thread_local! {
    /// Degree of parallelism installed by the innermost `ThreadPool::install`.
    static CURRENT_WIDTH: Cell<usize> = const { Cell::new(0) };
}

fn default_width() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The degree of parallelism in effect on the calling thread.
pub fn current_num_threads() -> usize {
    let width = CURRENT_WIDTH.with(|w| w.get());
    if width == 0 {
        default_width()
    } else {
        width
    }
}

/// Error type of [`ThreadPoolBuilder::build`]; the shim never fails.
pub struct ThreadPoolBuildError(());

impl fmt::Debug for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ThreadPoolBuildError")
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building a pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker count; `0` means one worker per logical CPU.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Accepted for API compatibility; the shim spawns anonymous scoped
    /// threads, so the name function is dropped.
    pub fn thread_name<F>(self, _name: F) -> Self
    where
        F: FnMut(usize) -> String,
    {
        self
    }

    /// Finish the build. Never fails in the shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let width = if self.num_threads == 0 {
            default_width()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { width })
    }
}

/// A degree-of-parallelism token mirroring `rayon::ThreadPool`.
pub struct ThreadPool {
    width: usize,
}

impl ThreadPool {
    /// Number of workers parallel operations inside this pool will use.
    pub fn current_num_threads(&self) -> usize {
        self.width
    }

    /// Run `f` with this pool's parallelism installed on the calling thread.
    /// The previous width is restored even if `f` panics, so a caught panic
    /// (e.g. under `catch_unwind` in a test harness) cannot leak this pool's
    /// width into unrelated work on the same thread.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT_WIDTH.with(|w| w.set(self.0));
            }
        }
        let _restore = Restore(CURRENT_WIDTH.with(|w| w.replace(self.width)));
        f()
    }
}

/// Parallel iteration traits and adapters.
pub mod iter {
    /// A pending parallel iteration over the elements of a slice.
    pub struct SlicePar<'a, T> {
        slice: &'a [T],
    }

    impl<'a, T: Sync> SlicePar<'a, T> {
        /// Apply `op` to every element, splitting the slice into one
        /// contiguous chunk per available worker.
        pub fn for_each<F>(self, op: F)
        where
            F: Fn(&'a T) + Sync + Send,
        {
            let width = super::current_num_threads().clamp(1, self.slice.len().max(1));
            if width <= 1 || self.slice.len() <= 1 {
                self.slice.iter().for_each(op);
                return;
            }
            let chunk = self.slice.len().div_ceil(width);
            std::thread::scope(|scope| {
                for part in self.slice.chunks(chunk) {
                    let op = &op;
                    scope.spawn(move || part.iter().for_each(op));
                }
            });
        }

        /// Sum the elements. Sequential: the workspace only folds tiny
        /// ranges, and `Sum` gives no parallel-friendly identity.
        pub fn sum<S>(self) -> S
        where
            S: std::iter::Sum<&'a T>,
        {
            self.slice.iter().sum()
        }
    }

    /// `.par_iter()` on borrowed collections (slices, `Vec`).
    pub trait IntoParallelRefIterator<'a> {
        /// Element type yielded by the iteration.
        type Item: 'a;
        /// Borrowing parallel iterator over the collection.
        fn par_iter(&'a self) -> SlicePar<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> SlicePar<'a, T> {
            SlicePar { slice: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> SlicePar<'a, T> {
            SlicePar { slice: self }
        }
    }

    /// A pending parallel iteration over an integer range.
    pub struct RangePar<I> {
        range: std::ops::Range<I>,
    }

    impl<I> RangePar<I>
    where
        std::ops::Range<I>: Iterator<Item = I>,
    {
        /// Sum the range. Sequential; see [`SlicePar::sum`].
        pub fn sum<S>(self) -> S
        where
            S: std::iter::Sum<I>,
        {
            self.range.sum()
        }

        /// Apply `op` to every element of the range.
        pub fn for_each<F>(self, op: F)
        where
            F: Fn(I) + Sync + Send,
        {
            self.range.for_each(op);
        }
    }

    /// `.into_par_iter()` on owned collections and ranges.
    pub trait IntoParallelIterator {
        /// Element type yielded by the iteration.
        type Item;
        /// The pending parallel iterator type.
        type Iter;
        /// Convert into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I> IntoParallelIterator for std::ops::Range<I>
    where
        std::ops::Range<I>: Iterator<Item = I>,
    {
        type Item = I;
        type Iter = RangePar<I>;
        fn into_par_iter(self) -> RangePar<I> {
            RangePar { range: self }
        }
    }
}

/// Glob-import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn install_scopes_width() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), default_width());
    }

    #[test]
    fn for_each_visits_every_element_once() {
        let data: Vec<usize> = (0..1000).collect();
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            data.par_iter().for_each(|&i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn for_each_actually_crosses_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let data: Vec<usize> = (0..64).collect();
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            data.par_iter().for_each(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
            });
        });
        assert!(
            seen.lock().unwrap().len() > 1,
            "expected work on multiple threads"
        );
    }

    #[test]
    fn install_restores_width_after_panic() {
        let pool = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| panic!("boom"));
        }));
        assert_eq!(
            current_num_threads(),
            default_width(),
            "pool width must not leak past a caught panic"
        );
    }

    #[test]
    fn range_sum_matches_sequential() {
        let s: u64 = (0..1000u64).into_par_iter().sum();
        assert_eq!(s, 499_500);
    }
}
