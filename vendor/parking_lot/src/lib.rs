//! Offline shim for `parking_lot`: a [`Mutex`] with the crate's
//! non-poisoning `lock()` signature, backed by `std::sync::Mutex`. A
//! poisoned inner lock is recovered rather than propagated, matching
//! parking_lot's behaviour of not tracking poison at all.

use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`]; derefs to the protected value.
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Mutual exclusion lock mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available. Never returns a
    /// poison error: a panic while holding the lock leaves the data as-is.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(std::mem::take(&mut *m.lock()), vec![1, 2, 3]);
        assert!(m.lock().is_empty());
    }

    #[test]
    fn survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock is usable after a panicking holder");
    }
}
